"""Alpha-beta cost models for the MPI collectives distributed K-FAC uses.

Standard algorithm costs (Thakur et al., IJHPCA'05) on the two-level
network of :mod:`repro.distributed.network`:

* ring **allreduce**: ``2(p-1) alpha + 2 (p-1)/p * n / B``
* ring **allgather** (n bytes contributed per rank): ``(p-1) alpha + (p-1) n / B``
* binomial **broadcast**: ``ceil(log2 p) (alpha + n / B)``
* ring **reduce-scatter**: ``(p-1) alpha + (p-1)/p * n / B``

These feed both the simulated per-rank clocks and the performance model's
offline lookup table (section 4.4).

``gpus_per_node`` is required on every cost function: the topology term
must come from the caller's actual cluster (``SimCluster.gpus_per_node``
or ``Platform.gpus_per_node``), never from a silent default that could
disagree with the configured machine.
"""

from __future__ import annotations

import math

from repro.distributed.network import NetworkSpec

__all__ = [
    "allreduce_time",
    "allgather_time",
    "broadcast_time",
    "reduce_scatter_time",
    "COLLECTIVE_COSTS",
]


def _params(net: NetworkSpec, p: int, gpus_per_node: int) -> tuple[float, float]:
    return net.latency(p, gpus_per_node), net.effective_bandwidth(p, gpus_per_node)


def allreduce_time(net: NetworkSpec, p: int, nbytes: float, gpus_per_node: int) -> float:
    """Ring allreduce of ``nbytes`` across ``p`` ranks."""
    if p <= 1 or nbytes <= 0:
        return 0.0
    alpha, beta = _params(net, p, gpus_per_node)
    return 2 * (p - 1) * alpha + 2 * (p - 1) / p * nbytes / beta


def allgather_time(net: NetworkSpec, p: int, nbytes_per_rank: float, gpus_per_node: int) -> float:
    """Ring allgather where each rank contributes ``nbytes_per_rank``."""
    if p <= 1 or nbytes_per_rank <= 0:
        return 0.0
    alpha, beta = _params(net, p, gpus_per_node)
    return (p - 1) * alpha + (p - 1) * nbytes_per_rank / beta


def broadcast_time(net: NetworkSpec, p: int, nbytes: float, gpus_per_node: int) -> float:
    """Binomial-tree broadcast of ``nbytes`` from one rank to all."""
    if p <= 1 or nbytes <= 0:
        return 0.0
    alpha, beta = _params(net, p, gpus_per_node)
    hops = math.ceil(math.log2(p))
    return hops * (alpha + nbytes / beta)


def reduce_scatter_time(net: NetworkSpec, p: int, nbytes: float, gpus_per_node: int) -> float:
    """Ring reduce-scatter of ``nbytes`` across ``p`` ranks."""
    if p <= 1 or nbytes <= 0:
        return 0.0
    alpha, beta = _params(net, p, gpus_per_node)
    return (p - 1) * alpha + (p - 1) / p * nbytes / beta


def alltoall_time(net: NetworkSpec, p: int, nbytes_per_pair: float, gpus_per_node: int) -> float:
    """Pairwise-exchange all-to-all; each rank sends ``nbytes_per_pair``
    to every other rank ((p-1) rounds of alpha + n/beta)."""
    if p <= 1 or nbytes_per_pair <= 0:
        return 0.0
    alpha, beta = _params(net, p, gpus_per_node)
    return (p - 1) * (alpha + nbytes_per_pair / beta)


def hierarchical_allreduce_time(
    net: NetworkSpec, p: int, nbytes: float, gpus_per_node: int
) -> float:
    """Two-level allreduce: NVLink ring within each node, fabric ring
    across node leaders, NVLink broadcast back.  Beats the flat ring when
    intra-node bandwidth dominates (the NCCL-style tree/ring hierarchy on
    the paper's 4-GPU nodes)."""
    if p <= 1 or nbytes <= 0:
        return 0.0
    local = min(p, gpus_per_node)
    nodes = max(1, p // gpus_per_node)
    # Intra-node reduce-scatter + allgather at NVLink speed.
    intra = 0.0
    if local > 1:
        intra = 2 * ((local - 1) * net.intra_lat + (local - 1) / local * nbytes / net.intra_bw)
    # Inter-node ring among one leader per node, NIC undivided.
    inter = 0.0
    if nodes > 1:
        inter = 2 * (nodes - 1) * net.inter_lat + 2 * (nodes - 1) / nodes * nbytes / net.inter_bw
    return intra + inter


COLLECTIVE_COSTS = {
    "allreduce": allreduce_time,
    "allgather": allgather_time,
    "broadcast": broadcast_time,
    "reduce_scatter": reduce_scatter_time,
    "alltoall": alltoall_time,
    "hierarchical_allreduce": hierarchical_allreduce_time,
}
