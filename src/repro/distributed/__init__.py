"""Simulated multi-GPU cluster substrate.

Real data plane (NumPy arrays move between ranks) + modelled time plane
(alpha-beta collective costs on Slingshot-10/11 + NVLink fabrics).  See
DESIGN.md's substitution table for why this preserves the paper's
communication results.
"""

from repro.distributed.clock import SimClock, VirtualClock, VirtualClockPlane
from repro.distributed.cluster import SimCluster, SimRank
from repro.distributed.collectives import (
    COLLECTIVE_COSTS,
    allgather_time,
    allreduce_time,
    alltoall_time,
    broadcast_time,
    hierarchical_allreduce_time,
    reduce_scatter_time,
)
from repro.distributed.network import (
    PLATFORM1,
    PLATFORM2,
    SLINGSHOT10,
    SLINGSHOT11,
    NetworkSpec,
    Platform,
)
from repro.distributed.plane import RepView, map_payloads, payload_nbytes

__all__ = [
    "SimClock",
    "VirtualClock",
    "VirtualClockPlane",
    "SimCluster",
    "SimRank",
    "RepView",
    "map_payloads",
    "payload_nbytes",
    "NetworkSpec",
    "Platform",
    "PLATFORM1",
    "PLATFORM2",
    "SLINGSHOT10",
    "SLINGSHOT11",
    "allreduce_time",
    "allgather_time",
    "broadcast_time",
    "reduce_scatter_time",
    "alltoall_time",
    "hierarchical_allreduce_time",
    "COLLECTIVE_COSTS",
]
