"""Representative-rank payload views for the timing track.

On the convergence track every collective materialises one payload per
rank — honest, bit-identical to MPI, and O(world) memory.  The timing
track exploits the data-parallel symmetry the trainers already have
(after an allreduce/broadcast every rank holds the same bytes): one
*representative* payload stands in for all ranks, wrapped in a
:class:`RepView` so per-rank-list call sites keep working unchanged.

A :class:`RepView` is a read-only sequence of length ``world`` whose
every element is the *same* payload object.  Callers must treat the
elements as read-only — an in-place mutation through index 0 is visible
at every other index, which is exactly the aliasing the convergence
track's per-rank copies exist to prevent.  That trade is the
representative-rank contract (see DESIGN.md decision 8).
"""

from __future__ import annotations

from itertools import repeat
from typing import Callable

__all__ = ["RepView", "map_payloads", "payload_nbytes"]


class RepView:
    """O(1) stand-in for ``world`` identical per-rank payloads."""

    __slots__ = ("payload", "world")

    def __init__(self, payload, world: int):
        if world < 1:
            raise ValueError(f"world must be positive, got {world}")
        self.payload = payload
        self.world = world

    def __len__(self) -> int:
        return self.world

    def __getitem__(self, index):
        if isinstance(index, slice):
            return RepView(self.payload, len(range(*index.indices(self.world))))
        if not -self.world <= index < self.world:
            raise IndexError(f"rank index {index} out of range for world {self.world}")
        return self.payload

    def __iter__(self):
        return repeat(self.payload, self.world)

    def __repr__(self) -> str:
        return f"RepView(world={self.world}, payload={type(self.payload).__name__})"

    def map(self, fn: Callable) -> "RepView":
        """A new view whose payload is ``fn(payload)`` — the O(1)
        equivalent of mapping ``fn`` over every rank's element."""
        return RepView(fn(self.payload), self.world)


def map_payloads(payloads, fn: Callable):
    """Apply ``fn`` per rank: O(1) on a :class:`RepView`, a list
    comprehension on a real per-rank list.  The workhorse that lets one
    trainer code path (bucket slicing, compression) serve both tracks."""
    if isinstance(payloads, RepView):
        return payloads.map(fn)
    return [fn(p) for p in payloads]


def payload_nbytes(payloads) -> float:
    """Bytes actually resident for a per-rank payload set.

    A :class:`RepView` holds one buffer regardless of world size; a real
    list holds one per rank.  Feeds ``SimCluster.peak_payload_bytes``,
    the number the fleet CI asserts stays flat as the world grows.
    """
    if isinstance(payloads, RepView):
        return float(getattr(payloads.payload, "nbytes", 0.0))
    return float(sum(getattr(p, "nbytes", 0.0) for p in payloads))
