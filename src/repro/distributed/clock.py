"""Per-rank simulated clocks with named time categories.

Fig. 1's breakdown (KFAC Allgather / KFAC Allreduce / KFAC Computations /
Forward+Backward / Others) is produced by accumulating simulated seconds
into these categories as the trainer executes.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["SimClock"]


class SimClock:
    """Monotonic simulated clock accumulating time per category."""

    def __init__(self) -> None:
        self.now = 0.0
        self.categories: dict[str, float] = defaultdict(float)

    def advance(self, seconds: float, category: str = "other") -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        self.now += seconds
        self.categories[category] += seconds

    def sync_to(self, t: float, category: str = "wait") -> None:
        """Jump forward to ``t`` (barrier wait); no-op if already past it."""
        if t > self.now:
            self.categories[category] += t - self.now
            self.now = t

    def breakdown(self) -> dict[str, float]:
        """Copy of the per-category time totals."""
        return dict(self.categories)

    def fraction(self, category: str) -> float:
        """Share of total accumulated time spent in ``category``."""
        total = sum(self.categories.values())
        return self.categories.get(category, 0.0) / total if total > 0 else 0.0

    def reset(self) -> None:
        self.now = 0.0
        self.categories.clear()
