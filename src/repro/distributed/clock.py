"""Per-rank simulated clocks with named time categories.

Fig. 1's breakdown (KFAC Allgather / KFAC Allreduce / KFAC Computations /
Forward+Backward / Others) is produced by accumulating simulated seconds
into these categories as the trainer executes.

Two representations share one contract:

* :class:`SimClock` — one independent clock per rank (the convergence
  track).  Cost: O(world) clock mutations per collective.
* :class:`VirtualClockPlane` + :class:`VirtualClock` — the timing
  track's representation: one shared base time plus a *sparse* map of
  per-rank skews.  Ranks are near-symmetric (collectives are barriers),
  so almost all per-rank clocks are equal almost all the time; only
  ranks that diverged (stragglers, owner-only compute) carry an entry.
  A barrier is O(#skewed ranks), independent of world size, which is
  what lets the fleet scheduler run 16k-rank jobs on a laptop.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["SimClock", "VirtualClock", "VirtualClockPlane"]


class SimClock:
    """Monotonic simulated clock accumulating time per category."""

    def __init__(self) -> None:
        self.now = 0.0
        self.categories: dict[str, float] = defaultdict(float)

    def advance(self, seconds: float, category: str = "other") -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        self.now += seconds
        self.categories[category] += seconds

    def sync_to(self, t: float, category: str = "wait") -> None:
        """Jump forward to ``t`` (barrier wait); no-op if already past it."""
        if t > self.now:
            self.categories[category] += t - self.now
            self.now = t

    def breakdown(self) -> dict[str, float]:
        """Copy of the per-category time totals."""
        return dict(self.categories)

    def fraction(self, category: str) -> float:
        """Share of total accumulated time spent in ``category``."""
        total = sum(self.categories.values())
        return self.categories.get(category, 0.0) / total if total > 0 else 0.0

    def reset(self) -> None:
        self.now = 0.0
        self.categories.clear()


class VirtualClockPlane:
    """All per-rank clocks of a timing-track cluster, stored sparsely.

    The plane keeps one shared ``base`` time plus ``skew`` — a map from
    rank id to how far that rank is *ahead* of the base.  Between two
    barriers only the ranks that did extra work (an eigendecomposition
    owner, a straggler) appear in ``skew``; a barrier folds the maximum
    skew into the base and clears the map, charging the mean per-rank
    wait, so the common collective path costs O(#skewed ranks) no matter
    how large the world is.

    ``categories`` accumulates *mean per-rank* seconds, matching what
    :meth:`SimCluster.breakdown` reports on the convergence track.
    """

    def __init__(self, world_size: int) -> None:
        if world_size < 1:
            raise ValueError(f"world_size must be positive, got {world_size}")
        self.world_size = world_size
        self.base = 0.0
        self.skew: dict[int, float] = {}
        self.categories: dict[str, float] = defaultdict(float)
        # Straggler accounting for xray: how many seconds each rank has
        # led a barrier by (it arrived last, everyone else waited on it),
        # plus the total mean per-rank barrier wait.  Sparse, like skew.
        self.lead_seconds: dict[int, float] = {}
        self.barrier_wait_s = 0.0

    @property
    def max_now(self) -> float:
        """The furthest-ahead rank's time (where the next barrier lands)."""
        return self.base + (max(self.skew.values()) if self.skew else 0.0)

    def now_of(self, rank: int) -> float:
        return self.base + self.skew.get(rank, 0.0)

    def advance_all(self, seconds: float, category: str = "other") -> None:
        """Advance every rank together (perfectly parallel work)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        self.base += seconds
        self.categories[category] += seconds

    def advance_rank(self, rank: int, seconds: float, category: str = "other") -> None:
        """Advance one rank ahead of the pack (owner-only compute)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        self.skew[rank] = self.skew.get(rank, 0.0) + seconds
        self.categories[category] += seconds / self.world_size

    def sync_rank_to(self, rank: int, t: float, category: str = "wait") -> None:
        """Jump one rank forward to ``t``; no-op if already past it."""
        now = self.now_of(rank)
        if t > now:
            self.categories[category] += (t - now) / self.world_size
            self.skew[rank] = t - self.base

    def barrier(self, category: str = "wait") -> None:
        """Synchronise every rank to the furthest-ahead one.

        Charges the mean per-rank wait: ranks not in ``skew`` wait the
        full maximum skew, each skewed rank waits the difference.
        """
        if not self.skew:
            return
        top = max(self.skew.values())
        if top > 0.0:
            mean_skew = sum(self.skew.values()) / self.world_size
            top_rank = min(r for r, s in self.skew.items() if s == top)
            self.lead_seconds[top_rank] = self.lead_seconds.get(top_rank, 0.0) + top
            self.barrier_wait_s += top - mean_skew
            self.categories[category] += top - mean_skew
            self.base += top
        self.skew.clear()

    def top_straggler(self) -> tuple[int, float] | None:
        """The rank that led the most barrier time (rank, seconds).

        Returns ``None`` when no barrier has folded skew yet; ties break
        to the lowest rank id.
        """
        if not self.lead_seconds:
            return None
        top = max(self.lead_seconds.values())
        rank = min(r for r, s in self.lead_seconds.items() if s == top)
        return rank, top

    def breakdown(self) -> dict[str, float]:
        return dict(self.categories)

    def reset(self) -> None:
        self.base = 0.0
        self.skew.clear()
        self.categories.clear()
        self.lead_seconds.clear()
        self.barrier_wait_s = 0.0


class VirtualClock:
    """Per-rank adapter with the :class:`SimClock` interface, backed by a
    shared :class:`VirtualClockPlane`.

    Lets the runtime engine, trainers, and tests address "rank r's clock"
    uniformly on both tracks; mutations through the adapter stay sparse.
    """

    __slots__ = ("plane", "rank")

    def __init__(self, plane: VirtualClockPlane, rank: int) -> None:
        self.plane = plane
        self.rank = rank

    @property
    def now(self) -> float:
        return self.plane.now_of(self.rank)

    @property
    def categories(self) -> dict[str, float]:
        """The plane's shared mean-per-rank category totals."""
        return self.plane.categories

    def advance(self, seconds: float, category: str = "other") -> None:
        self.plane.advance_rank(self.rank, seconds, category)

    def sync_to(self, t: float, category: str = "wait") -> None:
        self.plane.sync_rank_to(self.rank, t, category)

    def breakdown(self) -> dict[str, float]:
        return self.plane.breakdown()

    def fraction(self, category: str) -> float:
        total = sum(self.plane.categories.values())
        return self.plane.categories.get(category, 0.0) / total if total > 0 else 0.0

    def reset(self) -> None:
        self.plane.reset()
