"""In-process simulated GPU cluster.

The data plane is real: collectives move actual NumPy arrays between the
per-rank slots, so distributed training in this simulator is numerically
identical to MPI data-parallel training (including the exact bytes a
compressor puts on the wire).  The time plane is modelled: every
collective advances all participating ranks' :class:`SimClock`s by the
alpha-beta cost of the operation, after synchronising them (collectives
are barriers).

All collectives take *per-rank lists* (index = rank) because ranks
execute sequentially in one process.  This mirrors mpi4py's buffer
semantics — ``allreduce(sendbufs) -> recvbufs`` — without real processes.

With a :class:`~repro.faults.plan.FaultPlan` attached, the cluster
consults its :class:`~repro.faults.controller.FaultController` on every
collective: stragglers and jitter stretch individual rank clocks (other
ranks pay at the next barrier), link-degradation windows scale the
alpha-beta network parameters, payload copies can be bit-flipped or
dropped, and scheduled rank failures shrink the active world at
iteration boundaries.  Without a plan (or with an empty one) every code
path is bit-identical to the fault-free build.

Two tracks (DESIGN.md decision 8):

* ``track="convergence"`` (the default) — the behaviour described above,
  bit-identical to the seed: full per-rank payloads, one
  :class:`SimClock` per rank.
* ``track="timing"`` — the representative-rank scheme behind
  :mod:`repro.fleet`: per-rank payloads are assumed identical (the
  trainers' data-parallel symmetry), so collectives compute time from
  ONE real payload and hand back a :class:`~repro.distributed.plane.RepView`;
  clocks live in a shared :class:`VirtualClockPlane`.  Payload memory
  and per-collective CPU are O(1) in world size, while every modelled
  second is computed by the exact same alpha-beta formulas as the
  convergence track.  Fault support is per plane (``TRACK_PLANES``):
  time-plane faults (stragglers, jitter, degradation) and
  availability-plane faults (rank/node failures, job crashes) compose
  normally, while data-plane faults (payload corruption, dropped
  contributions) are rejected — they are per-rank by nature and have no
  representative payload to touch.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.clock import SimClock, VirtualClock, VirtualClockPlane
from repro.distributed.collectives import COLLECTIVE_COSTS
from repro.distributed.network import PLATFORM1, NetworkSpec, Platform
from repro.distributed.plane import RepView, payload_nbytes
from repro.faults.controller import FaultController
from repro.faults.plan import FailureEvent, FaultPlan
from repro.telemetry import SIM_TRACK, get_metrics, get_tracer
from repro.util.seeding import rng_for_rank

__all__ = ["SimRank", "SimCluster", "TRACK_PLANES"]

#: Fault planes each track can honor (DESIGN.md decision 9).  The timing
#: track shares one representative payload across all ranks, so per-rank
#: data-plane faults (corruption, drops) have nothing to corrupt — but
#: time-plane faults stretch the VirtualClockPlane and availability-plane
#: faults shrink the world, both of which representative runs model
#: exactly.
TRACK_PLANES = {
    "convergence": frozenset({"time", "data", "availability"}),
    "timing": frozenset({"time", "availability"}),
}
_TRACK_PLANES = TRACK_PLANES


class SimRank:
    """One simulated GPU worker.

    The per-rank RNG is created lazily: a 16k-rank timing cluster never
    draws per-rank randomness, so spawning 16k generators up front would
    be pure construction overhead.
    """

    __slots__ = ("rank", "node", "clock", "_rng", "_seed")

    def __init__(self, rank: int, node: int, clock, rng=None, *, seed: int = 0):
        self.rank = rank
        self.node = node
        self.clock = clock
        self._rng = rng
        self._seed = seed

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = rng_for_rank(self._seed, self.rank)
        return self._rng


class SimCluster:
    """A set of simulated ranks sharing a modelled network."""

    def __init__(
        self,
        n_nodes: int,
        gpus_per_node: int = 4,
        *,
        network: NetworkSpec | None = None,
        platform: Platform | None = None,
        seed: int = 0,
        fault_plan: FaultPlan | None = None,
        track: str = "convergence",
        payloads: str | None = None,
    ):
        if platform is not None:
            network = platform.network
            gpus_per_node = platform.gpus_per_node
        if not isinstance(n_nodes, int) or isinstance(n_nodes, bool) or n_nodes < 1:
            raise ValueError(f"n_nodes must be a positive integer, got {n_nodes!r}")
        if (
            not isinstance(gpus_per_node, int)
            or isinstance(gpus_per_node, bool)
            or gpus_per_node < 1
        ):
            raise ValueError(
                f"gpus_per_node must be a positive integer, got {gpus_per_node!r}"
            )
        if track not in ("convergence", "timing"):
            raise ValueError(f"track must be 'convergence' or 'timing', got {track!r}")
        if payloads is None:
            payloads = "full" if track == "convergence" else "representative"
        if payloads not in ("full", "representative"):
            raise ValueError(f"payloads must be 'full' or 'representative', got {payloads!r}")
        if track == "convergence" and payloads == "representative":
            raise ValueError(
                "representative payloads require track='timing': the convergence "
                "track's contract is full per-rank payloads, bit-identical to MPI"
            )
        self.platform = platform
        self._network = network if network is not None else PLATFORM1.network
        self.n_nodes = n_nodes
        self.gpus_per_node = gpus_per_node
        self.track = track
        self.payloads = payloads
        world = n_nodes * gpus_per_node
        self._plane: VirtualClockPlane | None = (
            VirtualClockPlane(world) if track == "timing" else None
        )
        if self._plane is not None:
            self.ranks = [
                SimRank(r, r // gpus_per_node, VirtualClock(self._plane, r), seed=seed)
                for r in range(world)
            ]
        else:
            self.ranks = [
                SimRank(r, r // gpus_per_node, SimClock(), seed=seed) for r in range(world)
            ]
        #: Ranks permanently lost to scheduled failures (clocks frozen).
        self.lost_ranks: list[SimRank] = []
        #: Optional fabric-contention hook ``(op, start, seconds) -> seconds``;
        #: the fleet scheduler installs one so concurrent jobs slow each
        #: other's collectives.  ``None`` (the default) is bit-identical
        #: to the uncontended cluster.
        self.contention = None
        #: Largest payload set (bytes) any single collective materialised —
        #: per-rank buffers on the full-payload path, one buffer on the
        #: representative path.  The fleet CI asserts this stays flat as
        #: the timing-track world grows.
        self.peak_payload_bytes = 0.0
        #: Critical-path sim seconds added by time-plane faults (the max
        #: per-rank straggler/jitter stall of each collective) — the part
        #: of :attr:`time` the fleet's goodput accounting treats as lost
        #: rather than useful work.
        self.fault_delay_seconds = 0.0
        # An empty plan must behave exactly like no plan, so it is
        # discarded here rather than special-cased on every hot path.
        # (A crashes-only plan is empty *for the cluster*: job crashes are
        # interpreted by the fleet scheduler, one layer up.)
        self.faults: FaultController | None = None
        if fault_plan is not None and not fault_plan.is_empty_for_cluster():
            for entry in fault_plan.entries():
                if entry.plane not in _TRACK_PLANES[track]:
                    supported = sorted(
                        t for t, planes in _TRACK_PLANES.items() if entry.plane in planes
                    )
                    raise ValueError(
                        f"{type(entry).__name__} is a {entry.plane}-plane fault, which "
                        f"the {track!r} track cannot honor (its representative payload "
                        f"is shared by all ranks); tracks supporting it: "
                        f"{', '.join(supported)}"
                    )
            self.faults = FaultController(fault_plan, world)

    @classmethod
    def from_world_size(
        cls, world_size: int, gpus_per_node: int = 4, **kwargs
    ) -> "SimCluster":
        """Build a cluster from a total rank count.

        A world smaller than one full node becomes a single partial node;
        anything else must divide evenly into ``gpus_per_node``-GPU nodes.
        """
        if not isinstance(world_size, int) or isinstance(world_size, bool) or world_size < 1:
            raise ValueError(f"world_size must be a positive integer, got {world_size!r}")
        if (
            not isinstance(gpus_per_node, int)
            or isinstance(gpus_per_node, bool)
            or gpus_per_node < 1
        ):
            raise ValueError(
                f"gpus_per_node must be a positive integer, got {gpus_per_node!r}"
            )
        local = min(world_size, gpus_per_node)
        if world_size % local:
            raise ValueError(
                f"world_size {world_size} does not divide into {gpus_per_node}-GPU nodes"
            )
        return cls(world_size // local, local, **kwargs)

    @property
    def world_size(self) -> int:
        """Number of *live* ranks (shrinks when scheduled failures fire)."""
        return len(self.ranks)

    @property
    def is_timing(self) -> bool:
        """True on the representative-rank timing track."""
        return self.track == "timing"

    @property
    def representative(self) -> bool:
        """True when collectives return :class:`RepView`s, not per-rank lists."""
        return self.payloads == "representative"

    @property
    def network(self) -> NetworkSpec:
        """The fabric spec, degraded while a degradation window is active."""
        if self.faults is not None:
            return self.faults.effective_network(self._network)
        return self._network

    @network.setter
    def network(self, spec: NetworkSpec) -> None:
        self._network = spec

    # -- fault plane ---------------------------------------------------------

    def begin_iteration(self, iteration: int) -> list[FailureEvent]:
        """Advance the fault schedule to ``iteration``; apply due failures.

        Returns one :class:`FailureEvent` per newly dead rank, carrying
        the rank's position in the *pre-removal* active list so callers
        can fix up position-indexed state (layer ownership tables).
        Without a fault plan this is free and returns nothing.
        """
        if self.faults is None:
            return []
        due = self.faults.begin_iteration(iteration)
        events = [
            FailureEvent(f.rank, pos, iteration, f.recoverable)
            for f in due
            for pos in [self._position_of(f.rank)]
            if pos is not None
        ]
        if events:
            dead = {e.rank for e in events}
            if len(dead) >= len(self.ranks):
                raise RuntimeError("fault plan killed every remaining rank")
            tracer = get_tracer()
            for r in self.ranks:
                if r.rank in dead:
                    self.lost_ranks.append(r)
                    if tracer.enabled:
                        tracer.add_span(
                            "rank_failure",
                            "fault_event",
                            0.0,
                            start=r.clock.now,
                            track=SIM_TRACK,
                            rank=r.rank,
                        )
            self.ranks = [r for r in self.ranks if r.rank not in dead]
            m = get_metrics()
            if m.enabled:
                m.gauge("faults.world_size").set(self.world_size)
        return events

    def _position_of(self, rank_id: int) -> int | None:
        for i, r in enumerate(self.ranks):
            if r.rank == rank_id:
                return i
        return None

    # -- time plane helpers --------------------------------------------------

    def _barrier_and_advance(
        self, seconds: float, category: str, *, op: str | None = None, **attrs
    ) -> None:
        """Synchronise all clocks to the latest rank, then advance together.

        With tracing enabled, every clock mutation becomes a sim-track
        span: a ``wait`` span per rank that blocks at the barrier, then
        one ``op`` span per rank for the collective itself — so per-rank
        span totals reconcile exactly with :meth:`breakdown`.

        Active stragglers/jitter add per-rank ``fault_delay`` time on top
        of the collective; the slowed rank pays immediately and everyone
        else pays at the next barrier, exactly like a real straggler.

        Timing track: the same barrier semantics run through the sparse
        :class:`VirtualClockPlane` in O(#skewed ranks), and tracing emits
        one span per collective instead of one per rank (the per-rank
        span-reconciliation invariant is a convergence-track guarantee).
        """
        tracer = get_tracer()
        if self._plane is not None:
            plane = self._plane
            extras: dict[int, float] = {}
            if self.faults is not None:
                extras = self.faults.collective_extras(
                    op or category, seconds, [r.rank for r in self.ranks]
                )
                if extras:
                    self.fault_delay_seconds += max(extras.values())
            start = plane.max_now
            plane.barrier("wait")
            plane.advance_all(seconds, category)
            if tracer.enabled:
                tracer.add_span(
                    op or category,
                    category,
                    seconds,
                    start=start,
                    track=SIM_TRACK,
                    rank="*",
                    **attrs,
                )
            for rank_id, extra in extras.items():
                if extra > 0.0:
                    plane.advance_rank(rank_id, extra, "fault_delay")
                    if tracer.enabled:
                        tracer.add_span(
                            "fault_delay",
                            "fault_delay",
                            extra,
                            start=start + seconds,
                            track=SIM_TRACK,
                            rank=rank_id,
                            op=op or category,
                        )
            return
        extras: dict[int, float] = {}
        if self.faults is not None:
            extras = self.faults.collective_extras(
                op or category, seconds, [r.rank for r in self.ranks]
            )
            if extras:
                self.fault_delay_seconds += max(extras.values())
        t = max(r.clock.now for r in self.ranks)
        op_spans = []  # per-rank collective legs, rank order
        for r in self.ranks:
            wait_span = None
            if tracer.enabled and t > r.clock.now:
                wait_span = tracer.add_span(
                    "wait",
                    "wait",
                    t - r.clock.now,
                    start=r.clock.now,
                    track=SIM_TRACK,
                    rank=r.rank,
                    op=op or category,
                )
            r.clock.sync_to(t)
            r.clock.advance(seconds, category)
            if tracer.enabled:
                op_span = tracer.add_span(
                    op or category,
                    category,
                    seconds,
                    start=t,
                    track=SIM_TRACK,
                    rank=r.rank,
                    **attrs,
                )
                op_spans.append(op_span)
                if wait_span is not None:
                    # The barrier wait releases into this rank's leg of
                    # the collective.
                    tracer.add_edge(wait_span.id, op_span.id, "wait")
            extra = extras.get(r.rank, 0.0)
            if extra > 0.0:
                r.clock.advance(extra, "fault_delay")
                if tracer.enabled:
                    tracer.add_span(
                        "fault_delay",
                        "fault_delay",
                        extra,
                        start=t + seconds,
                        track=SIM_TRACK,
                        rank=r.rank,
                        op=op or category,
                    )
        # Chain the per-rank legs of this collective in ascending rank
        # order — one coupled operation, not world_size independent ones.
        for a, b in zip(op_spans, op_spans[1:]):
            tracer.add_edge(a.id, b.id, "collective")

    def _record_collective(
        self, op: str, seconds: float, raw_nbytes: float, wire_nbytes: float
    ) -> None:
        """Counters/histograms for one collective across the whole cluster."""
        m = get_metrics()
        if not m.enabled:
            return
        m.counter("comm.calls", op=op).inc()
        m.counter("comm.raw_bytes", op=op).inc(raw_nbytes)
        m.counter("comm.wire_bytes", op=op).inc(wire_nbytes)
        m.histogram("comm.seconds", op=op).observe(seconds)

    def advance_all(self, seconds: float, category: str) -> None:
        """Advance every rank's clock (e.g. perfectly parallel compute)."""
        tracer = get_tracer()
        if self._plane is not None:
            start = self._plane.base
            self._plane.advance_all(seconds, category)
            if tracer.enabled:
                tracer.add_span(
                    category, category, seconds, start=start, track=SIM_TRACK, rank="*"
                )
            return
        for r in self.ranks:
            if tracer.enabled:
                tracer.add_span(
                    category, category, seconds, start=r.clock.now, track=SIM_TRACK, rank=r.rank
                )
            r.clock.advance(seconds, category)

    def advance_rank(self, rank: int, seconds: float, category: str) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.add_span(
                category,
                category,
                seconds,
                start=self.ranks[rank].clock.now,
                track=SIM_TRACK,
                rank=rank,
            )
        self.ranks[rank].clock.advance(seconds, category)

    @property
    def time(self) -> float:
        """Simulated wall-clock: the slowest rank's time."""
        if self._plane is not None:
            return self._plane.max_now
        return max(r.clock.now for r in self.ranks)

    def breakdown(self) -> dict[str, float]:
        """Mean per-rank time per category (ranks are near-symmetric)."""
        if self._plane is not None:
            return self._plane.breakdown()
        out: dict[str, float] = {}
        for r in self.ranks:
            for cat, t in r.clock.breakdown().items():
                out[cat] = out.get(cat, 0.0) + t / self.world_size
        return out

    def reset_clocks(self) -> None:
        if self._plane is not None:
            self._plane.reset()
            return
        for r in self.ranks:
            r.clock.reset()

    # -- collective pricing ---------------------------------------------------

    def collective_seconds(self, op: str, nbytes: float) -> float:
        """Alpha-beta seconds for one collective on the current fabric.

        The single pricing point both the blocking collectives and the
        runtime engine call — which is what keeps blocking and overlapped
        execution bit-identical in modelled time, and gives the fleet's
        contention hook one place to stretch transfers.
        """
        seconds = COLLECTIVE_COSTS[op](
            self.network, self.world_size, nbytes, self.gpus_per_node
        )
        if self.contention is not None and seconds > 0.0:
            seconds = self.contention(op, self.time, seconds)
        return seconds

    # -- data-plane collectives ----------------------------------------------
    #
    # Each collective is split into a pure data-plane helper (``_*_data``)
    # and the blocking wrapper that adds barrier time accounting.  The
    # nonblocking engine in :mod:`repro.runtime` calls the same data
    # helpers, which is what makes the overlapped execution path
    # bit-identical to the blocking one: only the clocks differ.

    def _check(self, arrays) -> None:
        if len(arrays) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} per-rank arrays, got {len(arrays)}"
            )

    def _note_payload(self, nbytes: float) -> None:
        if nbytes > self.peak_payload_bytes:
            self.peak_payload_bytes = nbytes

    def replicate(self, value, *, copy: bool = True):
        """Per-rank view of one representative value.

        Representative payloads: an O(1) :class:`RepView`.  Full
        payloads: a real per-rank list (``copy=True`` hands each rank an
        independent array buffer, matching what per-rank computation
        would have produced).
        """
        if self.representative:
            return RepView(value, self.world_size)
        if copy and isinstance(value, np.ndarray):
            return [value.copy() for _ in range(self.world_size)]
        return [value for _ in range(self.world_size)]

    def _replicate_result(self, result: np.ndarray):
        """Per-rank copies of a collective's result (shared view when
        representative); also the output half of payload accounting."""
        if self.representative:
            self._note_payload(result.nbytes)
            return RepView(result, self.world_size)
        self._note_payload(result.nbytes * self.world_size)
        return [result.copy() for _ in range(self.world_size)]

    def _reduce_data(self, arrays, op: str, *, average: bool) -> np.ndarray:
        """Shared reduction math for (i)allreduce / (i)reduce_scatter.

        A rank hit by a :class:`~repro.faults.plan.DroppedContribution`
        fault is excluded from the sum and the averaging denominator —
        the collective gracefully degrades to the surviving contributors.

        Timing track: per-rank payloads are identical by contract, so
        the average IS payload 0 and the sum is payload 0 scaled by the
        contributor count — both exact in floating point, which is what
        makes the "full" and "representative" payload modes bit-equal
        (a loop-sum of ``w`` identical floats divided by ``w`` is not).
        """
        self._check(arrays)
        self._note_payload(payload_nbytes(arrays))
        if self.is_timing:
            base = np.asarray(arrays[0], dtype=np.float64)
            return base.copy() if average else base * float(self.world_size)
        skip: set[int] = set()
        if self.faults is not None:
            dropped = self.faults.dropped_ranks(op, [r.rank for r in self.ranks])
            skip = {i for i, r in enumerate(self.ranks) if r.rank in dropped}
        total = np.zeros_like(np.asarray(arrays[0], dtype=np.float64))
        for i, a in enumerate(arrays):
            if i not in skip:
                total += a
        if average:
            total /= self.world_size - len(skip)
        return total

    def allreduce(
        self,
        arrays: list[np.ndarray],
        *,
        average: bool = False,
        category: str = "allreduce",
        nbytes: float | None = None,
    ) -> list[np.ndarray]:
        """Sum (or average) per-rank arrays; every rank gets the result.

        ``nbytes`` overrides the modelled wire size (used when the
        payload travels compressed, e.g. factor compression).
        """
        total = self._reduce_data(arrays, "allreduce", average=average)
        result = total.astype(np.asarray(arrays[0]).dtype)
        wire = result.nbytes if nbytes is None else nbytes
        seconds = self.collective_seconds("allreduce", wire)
        self._record_collective("allreduce", seconds, result.nbytes, wire)
        self._barrier_and_advance(
            seconds,
            category,
            op="allreduce",
            nbytes_raw=result.nbytes,
            nbytes_wire=wire,
        )
        return self._replicate_result(result)

    def allgather(
        self,
        objects: list[object],
        *,
        nbytes_per_rank: float | None = None,
        category: str = "allgather",
    ) -> list[list[object]]:
        """Each rank receives the full list of per-rank objects.

        ``nbytes_per_rank`` overrides the modelled payload size (used when
        gathering compressed blobs whose wire size differs from the Python
        object size); defaults to the max ``nbytes`` of NumPy payloads.
        """
        self._check(objects)
        if isinstance(objects, RepView):
            first = objects.payload
            raw_sizes = [first.nbytes] if isinstance(first, np.ndarray) else []
        else:
            raw_sizes = [o.nbytes for o in objects if isinstance(o, np.ndarray)]
        if nbytes_per_rank is None:
            nbytes_per_rank = max(raw_sizes) if raw_sizes else 0.0
        seconds = self.collective_seconds("allgather", nbytes_per_rank)
        raw = max(raw_sizes) if raw_sizes else nbytes_per_rank
        self._record_collective(
            "allgather", seconds, raw * self.world_size, nbytes_per_rank * self.world_size
        )
        self._barrier_and_advance(
            seconds,
            category,
            op="allgather",
            nbytes_raw=raw,
            nbytes_wire=nbytes_per_rank,
        )
        return self._inject_allgather_faults(self._allgather_data(objects))

    def _allgather_data(self, objects):
        # Real MPI allgather copies every contribution into each rank's
        # recvbuf; hand out per-rank copies of array payloads so an
        # in-place mutation on one simulated rank cannot leak into others.
        if self.representative:
            # One gathered row stands in for every rank's recvbuf; the
            # row itself is O(1) when the contributions were identical.
            first = objects.payload if isinstance(objects, RepView) else objects[0]
            self._note_payload(float(getattr(first, "nbytes", 0.0)))
            row = objects if isinstance(objects, RepView) else RepView(first, self.world_size)
            return RepView(row, self.world_size)
        self._note_payload(payload_nbytes(objects) * self.world_size)
        return [
            [o.copy() if isinstance(o, np.ndarray) else o for o in objects]
            for _ in self.ranks
        ]

    def _inject_allgather_faults(self, out):
        """Receiver-side corruption pass over freshly gathered copies.

        Skipped on the timing track: corruption plans are rejected at
        construction there, so the pass would be a per-rank no-op loop.
        """
        if self.faults is not None and not self.is_timing:
            for pos, receiver in enumerate(self.ranks):
                copies = out[pos]
                for src in range(len(copies)):
                    if src == pos:
                        continue  # a rank's own contribution never hits the wire
                    copies[src] = self._maybe_corrupt(copies[src], receiver, "allgather")
        return out

    def _maybe_corrupt(self, obj: object, receiver: SimRank, op: str) -> object:
        """Receiver-side data-plane injection for one payload copy."""
        corrupted, hit = self.faults.maybe_corrupt(obj, rank=receiver.rank, op=op)
        if hit:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.add_span(
                    "corruption",
                    "fault_event",
                    0.0,
                    start=receiver.clock.now,
                    track=SIM_TRACK,
                    rank=receiver.rank,
                    op=op,
                )
        return corrupted

    def broadcast(
        self, obj: object, root: int = 0, *, nbytes: float | None = None, category: str = "broadcast"
    ) -> list[object]:
        """Send ``obj`` from ``root`` to every rank."""
        raw = obj.nbytes if isinstance(obj, np.ndarray) else 0.0
        if nbytes is None:
            nbytes = raw
        seconds = self.collective_seconds("broadcast", nbytes)
        self._record_collective("broadcast", seconds, raw, nbytes)
        self._barrier_and_advance(
            seconds,
            category,
            op="broadcast",
            root=root,
            nbytes_raw=raw,
            nbytes_wire=nbytes,
        )
        return self._inject_broadcast_faults(self._broadcast_data(obj, root), root)

    def _broadcast_data(self, obj: object, root: int):
        # The root keeps its own buffer (MPI semantics); every other rank
        # receives a private copy of array payloads, so in-place edits on
        # one simulated rank cannot alias into the rest.
        if self.representative:
            self._note_payload(float(getattr(obj, "nbytes", 0.0)))
            return RepView(obj, self.world_size)
        self._note_payload(float(getattr(obj, "nbytes", 0.0)) * self.world_size)
        return [
            obj if r == root or not isinstance(obj, np.ndarray) else obj.copy()
            for r in range(self.world_size)
        ]

    def _inject_broadcast_faults(self, out, root: int):
        """Receiver-side corruption pass over freshly broadcast copies.

        Skipped on the timing track (corruption plans are rejected there).
        """
        if self.faults is not None and not self.is_timing:
            for pos, receiver in enumerate(self.ranks):
                if pos == root:
                    continue  # the sender's buffer never crosses the wire
                out[pos] = self._maybe_corrupt(out[pos], receiver, "broadcast")
        return out

    def reduce_scatter(
        self,
        arrays: list[np.ndarray],
        *,
        category: str = "reduce_scatter",
        nbytes: float | None = None,
    ) -> list[np.ndarray]:
        """Sum per-rank arrays, then scatter equal chunks back.

        ``nbytes`` overrides the modelled wire size, like ``allreduce``'s
        — required to cost compressed payloads through this collective.
        """
        total = self._reduce_data(arrays, "reduce_scatter", average=False)
        p = self.world_size
        flat = total.ravel()
        chunks = np.array_split(flat, p)
        wire = total.nbytes if nbytes is None else nbytes
        seconds = self.collective_seconds("reduce_scatter", wire)
        self._record_collective("reduce_scatter", seconds, total.nbytes, wire)
        self._barrier_and_advance(
            seconds,
            category,
            op="reduce_scatter",
            nbytes_raw=total.nbytes,
            nbytes_wire=wire,
        )
        return [c.astype(np.asarray(arrays[0]).dtype).copy() for c in chunks]
