"""In-process simulated GPU cluster.

The data plane is real: collectives move actual NumPy arrays between the
per-rank slots, so distributed training in this simulator is numerically
identical to MPI data-parallel training (including the exact bytes a
compressor puts on the wire).  The time plane is modelled: every
collective advances all participating ranks' :class:`SimClock`s by the
alpha-beta cost of the operation, after synchronising them (collectives
are barriers).

All collectives take *per-rank lists* (index = rank) because ranks
execute sequentially in one process.  This mirrors mpi4py's buffer
semantics — ``allreduce(sendbufs) -> recvbufs`` — without real processes.

With a :class:`~repro.faults.plan.FaultPlan` attached, the cluster
consults its :class:`~repro.faults.controller.FaultController` on every
collective: stragglers and jitter stretch individual rank clocks (other
ranks pay at the next barrier), link-degradation windows scale the
alpha-beta network parameters, payload copies can be bit-flipped or
dropped, and scheduled rank failures shrink the active world at
iteration boundaries.  Without a plan (or with an empty one) every code
path is bit-identical to the fault-free build.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.clock import SimClock
from repro.distributed.collectives import (
    allgather_time,
    allreduce_time,
    broadcast_time,
    reduce_scatter_time,
)
from repro.distributed.network import PLATFORM1, NetworkSpec, Platform
from repro.faults.controller import FaultController
from repro.faults.plan import FailureEvent, FaultPlan
from repro.telemetry import SIM_TRACK, get_metrics, get_tracer
from repro.util.seeding import rng_for_rank

__all__ = ["SimRank", "SimCluster"]


@dataclass
class SimRank:
    """One simulated GPU worker."""

    rank: int
    node: int
    clock: SimClock
    rng: np.random.Generator


class SimCluster:
    """A set of simulated ranks sharing a modelled network."""

    def __init__(
        self,
        n_nodes: int,
        gpus_per_node: int = 4,
        *,
        network: NetworkSpec | None = None,
        platform: Platform | None = None,
        seed: int = 0,
        fault_plan: FaultPlan | None = None,
    ):
        if platform is not None:
            network = platform.network
            gpus_per_node = platform.gpus_per_node
        self.platform = platform
        self._network = network if network is not None else PLATFORM1.network
        self.n_nodes = n_nodes
        self.gpus_per_node = gpus_per_node
        world = n_nodes * gpus_per_node
        if world < 1:
            raise ValueError("cluster must have at least one rank")
        self.ranks = [
            SimRank(r, r // gpus_per_node, SimClock(), rng_for_rank(seed, r))
            for r in range(world)
        ]
        #: Ranks permanently lost to scheduled failures (clocks frozen).
        self.lost_ranks: list[SimRank] = []
        # An empty plan must behave exactly like no plan, so it is
        # discarded here rather than special-cased on every hot path.
        self.faults: FaultController | None = None
        if fault_plan is not None and not fault_plan.is_empty():
            self.faults = FaultController(fault_plan, world)

    @property
    def world_size(self) -> int:
        """Number of *live* ranks (shrinks when scheduled failures fire)."""
        return len(self.ranks)

    @property
    def network(self) -> NetworkSpec:
        """The fabric spec, degraded while a degradation window is active."""
        if self.faults is not None:
            return self.faults.effective_network(self._network)
        return self._network

    @network.setter
    def network(self, spec: NetworkSpec) -> None:
        self._network = spec

    # -- fault plane ---------------------------------------------------------

    def begin_iteration(self, iteration: int) -> list[FailureEvent]:
        """Advance the fault schedule to ``iteration``; apply due failures.

        Returns one :class:`FailureEvent` per newly dead rank, carrying
        the rank's position in the *pre-removal* active list so callers
        can fix up position-indexed state (layer ownership tables).
        Without a fault plan this is free and returns nothing.
        """
        if self.faults is None:
            return []
        due = self.faults.begin_iteration(iteration)
        events = [
            FailureEvent(f.rank, pos, iteration, f.recoverable)
            for f in due
            for pos in [self._position_of(f.rank)]
            if pos is not None
        ]
        if events:
            dead = {e.rank for e in events}
            if len(dead) >= len(self.ranks):
                raise RuntimeError("fault plan killed every remaining rank")
            tracer = get_tracer()
            for r in self.ranks:
                if r.rank in dead:
                    self.lost_ranks.append(r)
                    if tracer.enabled:
                        tracer.add_span(
                            "rank_failure",
                            "fault_event",
                            0.0,
                            start=r.clock.now,
                            track=SIM_TRACK,
                            rank=r.rank,
                        )
            self.ranks = [r for r in self.ranks if r.rank not in dead]
            m = get_metrics()
            if m.enabled:
                m.gauge("faults.world_size").set(self.world_size)
        return events

    def _position_of(self, rank_id: int) -> int | None:
        for i, r in enumerate(self.ranks):
            if r.rank == rank_id:
                return i
        return None

    # -- time plane helpers --------------------------------------------------

    def _barrier_and_advance(
        self, seconds: float, category: str, *, op: str | None = None, **attrs
    ) -> None:
        """Synchronise all clocks to the latest rank, then advance together.

        With tracing enabled, every clock mutation becomes a sim-track
        span: a ``wait`` span per rank that blocks at the barrier, then
        one ``op`` span per rank for the collective itself — so per-rank
        span totals reconcile exactly with :meth:`breakdown`.

        Active stragglers/jitter add per-rank ``fault_delay`` time on top
        of the collective; the slowed rank pays immediately and everyone
        else pays at the next barrier, exactly like a real straggler.
        """
        tracer = get_tracer()
        extras: dict[int, float] = {}
        if self.faults is not None:
            extras = self.faults.collective_extras(
                op or category, seconds, [r.rank for r in self.ranks]
            )
        t = max(r.clock.now for r in self.ranks)
        for r in self.ranks:
            if tracer.enabled and t > r.clock.now:
                tracer.add_span(
                    "wait",
                    "wait",
                    t - r.clock.now,
                    start=r.clock.now,
                    track=SIM_TRACK,
                    rank=r.rank,
                    op=op or category,
                )
            r.clock.sync_to(t)
            r.clock.advance(seconds, category)
            if tracer.enabled:
                tracer.add_span(
                    op or category,
                    category,
                    seconds,
                    start=t,
                    track=SIM_TRACK,
                    rank=r.rank,
                    **attrs,
                )
            extra = extras.get(r.rank, 0.0)
            if extra > 0.0:
                r.clock.advance(extra, "fault_delay")
                if tracer.enabled:
                    tracer.add_span(
                        "fault_delay",
                        "fault_delay",
                        extra,
                        start=t + seconds,
                        track=SIM_TRACK,
                        rank=r.rank,
                        op=op or category,
                    )

    def _record_collective(
        self, op: str, seconds: float, raw_nbytes: float, wire_nbytes: float
    ) -> None:
        """Counters/histograms for one collective across the whole cluster."""
        m = get_metrics()
        if not m.enabled:
            return
        m.counter("comm.calls", op=op).inc()
        m.counter("comm.raw_bytes", op=op).inc(raw_nbytes)
        m.counter("comm.wire_bytes", op=op).inc(wire_nbytes)
        m.histogram("comm.seconds", op=op).observe(seconds)

    def advance_all(self, seconds: float, category: str) -> None:
        """Advance every rank's clock (e.g. perfectly parallel compute)."""
        tracer = get_tracer()
        for r in self.ranks:
            if tracer.enabled:
                tracer.add_span(
                    category, category, seconds, start=r.clock.now, track=SIM_TRACK, rank=r.rank
                )
            r.clock.advance(seconds, category)

    def advance_rank(self, rank: int, seconds: float, category: str) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.add_span(
                category,
                category,
                seconds,
                start=self.ranks[rank].clock.now,
                track=SIM_TRACK,
                rank=rank,
            )
        self.ranks[rank].clock.advance(seconds, category)

    @property
    def time(self) -> float:
        """Simulated wall-clock: the slowest rank's time."""
        return max(r.clock.now for r in self.ranks)

    def breakdown(self) -> dict[str, float]:
        """Mean per-rank time per category (ranks are near-symmetric)."""
        out: dict[str, float] = {}
        for r in self.ranks:
            for cat, t in r.clock.breakdown().items():
                out[cat] = out.get(cat, 0.0) + t / self.world_size
        return out

    def reset_clocks(self) -> None:
        for r in self.ranks:
            r.clock.reset()

    # -- data-plane collectives ----------------------------------------------
    #
    # Each collective is split into a pure data-plane helper (``_*_data``)
    # and the blocking wrapper that adds barrier time accounting.  The
    # nonblocking engine in :mod:`repro.runtime` calls the same data
    # helpers, which is what makes the overlapped execution path
    # bit-identical to the blocking one: only the clocks differ.

    def _check(self, arrays: list[np.ndarray]) -> None:
        if len(arrays) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} per-rank arrays, got {len(arrays)}"
            )

    def _reduce_data(self, arrays: list[np.ndarray], op: str, *, average: bool) -> np.ndarray:
        """Shared reduction math for (i)allreduce / (i)reduce_scatter.

        A rank hit by a :class:`~repro.faults.plan.DroppedContribution`
        fault is excluded from the sum and the averaging denominator —
        the collective gracefully degrades to the surviving contributors.
        """
        self._check(arrays)
        skip: set[int] = set()
        if self.faults is not None:
            dropped = self.faults.dropped_ranks(op, [r.rank for r in self.ranks])
            skip = {i for i, r in enumerate(self.ranks) if r.rank in dropped}
        total = np.zeros_like(np.asarray(arrays[0], dtype=np.float64))
        for i, a in enumerate(arrays):
            if i not in skip:
                total += a
        if average:
            total /= self.world_size - len(skip)
        return total

    def allreduce(
        self,
        arrays: list[np.ndarray],
        *,
        average: bool = False,
        category: str = "allreduce",
        nbytes: float | None = None,
    ) -> list[np.ndarray]:
        """Sum (or average) per-rank arrays; every rank gets the result.

        ``nbytes`` overrides the modelled wire size (used when the
        payload travels compressed, e.g. factor compression).
        """
        total = self._reduce_data(arrays, "allreduce", average=average)
        result = total.astype(np.asarray(arrays[0]).dtype)
        wire = result.nbytes if nbytes is None else nbytes
        seconds = allreduce_time(self.network, self.world_size, wire, self.gpus_per_node)
        self._record_collective("allreduce", seconds, result.nbytes, wire)
        self._barrier_and_advance(
            seconds,
            category,
            op="allreduce",
            nbytes_raw=result.nbytes,
            nbytes_wire=wire,
        )
        return [result.copy() for _ in range(self.world_size)]

    def allgather(
        self,
        objects: list[object],
        *,
        nbytes_per_rank: float | None = None,
        category: str = "allgather",
    ) -> list[list[object]]:
        """Each rank receives the full list of per-rank objects.

        ``nbytes_per_rank`` overrides the modelled payload size (used when
        gathering compressed blobs whose wire size differs from the Python
        object size); defaults to the max ``nbytes`` of NumPy payloads.
        """
        self._check(objects)
        raw_sizes = [o.nbytes for o in objects if isinstance(o, np.ndarray)]
        if nbytes_per_rank is None:
            nbytes_per_rank = max(raw_sizes) if raw_sizes else 0.0
        seconds = allgather_time(
            self.network, self.world_size, nbytes_per_rank, self.gpus_per_node
        )
        raw = max(raw_sizes) if raw_sizes else nbytes_per_rank
        self._record_collective(
            "allgather", seconds, raw * self.world_size, nbytes_per_rank * self.world_size
        )
        self._barrier_and_advance(
            seconds,
            category,
            op="allgather",
            nbytes_raw=raw,
            nbytes_wire=nbytes_per_rank,
        )
        return self._inject_allgather_faults(self._allgather_data(objects))

    def _allgather_data(self, objects: list[object]) -> list[list[object]]:
        # Real MPI allgather copies every contribution into each rank's
        # recvbuf; hand out per-rank copies of array payloads so an
        # in-place mutation on one simulated rank cannot leak into others.
        return [
            [o.copy() if isinstance(o, np.ndarray) else o for o in objects]
            for _ in self.ranks
        ]

    def _inject_allgather_faults(self, out: list[list[object]]) -> list[list[object]]:
        """Receiver-side corruption pass over freshly gathered copies."""
        if self.faults is not None:
            for pos, receiver in enumerate(self.ranks):
                copies = out[pos]
                for src in range(len(copies)):
                    if src == pos:
                        continue  # a rank's own contribution never hits the wire
                    copies[src] = self._maybe_corrupt(copies[src], receiver, "allgather")
        return out

    def _maybe_corrupt(self, obj: object, receiver: SimRank, op: str) -> object:
        """Receiver-side data-plane injection for one payload copy."""
        corrupted, hit = self.faults.maybe_corrupt(obj, rank=receiver.rank, op=op)
        if hit:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.add_span(
                    "corruption",
                    "fault_event",
                    0.0,
                    start=receiver.clock.now,
                    track=SIM_TRACK,
                    rank=receiver.rank,
                    op=op,
                )
        return corrupted

    def broadcast(
        self, obj: object, root: int = 0, *, nbytes: float | None = None, category: str = "broadcast"
    ) -> list[object]:
        """Send ``obj`` from ``root`` to every rank."""
        raw = obj.nbytes if isinstance(obj, np.ndarray) else 0.0
        if nbytes is None:
            nbytes = raw
        seconds = broadcast_time(self.network, self.world_size, nbytes, self.gpus_per_node)
        self._record_collective("broadcast", seconds, raw, nbytes)
        self._barrier_and_advance(
            seconds,
            category,
            op="broadcast",
            root=root,
            nbytes_raw=raw,
            nbytes_wire=nbytes,
        )
        return self._inject_broadcast_faults(self._broadcast_data(obj, root), root)

    def _broadcast_data(self, obj: object, root: int) -> list[object]:
        # The root keeps its own buffer (MPI semantics); every other rank
        # receives a private copy of array payloads, so in-place edits on
        # one simulated rank cannot alias into the rest.
        return [
            obj if r == root or not isinstance(obj, np.ndarray) else obj.copy()
            for r in range(self.world_size)
        ]

    def _inject_broadcast_faults(self, out: list[object], root: int) -> list[object]:
        """Receiver-side corruption pass over freshly broadcast copies."""
        if self.faults is not None:
            for pos, receiver in enumerate(self.ranks):
                if pos == root:
                    continue  # the sender's buffer never crosses the wire
                out[pos] = self._maybe_corrupt(out[pos], receiver, "broadcast")
        return out

    def reduce_scatter(
        self,
        arrays: list[np.ndarray],
        *,
        category: str = "reduce_scatter",
        nbytes: float | None = None,
    ) -> list[np.ndarray]:
        """Sum per-rank arrays, then scatter equal chunks back.

        ``nbytes`` overrides the modelled wire size, like ``allreduce``'s
        — required to cost compressed payloads through this collective.
        """
        total = self._reduce_data(arrays, "reduce_scatter", average=False)
        p = self.world_size
        flat = total.ravel()
        chunks = np.array_split(flat, p)
        wire = total.nbytes if nbytes is None else nbytes
        seconds = reduce_scatter_time(self.network, p, wire, self.gpus_per_node)
        self._record_collective("reduce_scatter", seconds, total.nbytes, wire)
        self._barrier_and_advance(
            seconds,
            category,
            op="reduce_scatter",
            nbytes_raw=total.nbytes,
            nbytes_wire=wire,
        )
        return [c.astype(np.asarray(arrays[0]).dtype).copy() for c in chunks]
