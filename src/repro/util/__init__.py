"""Shared utilities: seeding, bit packing, formatting.

These are deliberately dependency-free (NumPy only) so every other
subpackage can import them without cycles.
"""

from repro.util.bitpack import (
    pack_bitmap,
    pack_uints,
    unpack_bitmap,
    unpack_uints,
)
from repro.util.charts import bar_chart, stacked_bars
from repro.util.checkpoint import (
    SCHEMA_VERSION,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.util.seeding import spawn_rng
from repro.util.tables import format_table

__all__ = [
    "pack_bitmap",
    "unpack_bitmap",
    "pack_uints",
    "unpack_uints",
    "spawn_rng",
    "CheckpointError",
    "SCHEMA_VERSION",
    "save_checkpoint",
    "load_checkpoint",
    "format_table",
    "bar_chart",
    "stacked_bars",
]
