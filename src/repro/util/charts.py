"""ASCII charts for benchmark output.

Renders horizontal bar charts and stacked-percentage bars so the bench
text files visually resemble the paper's figures.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["bar_chart", "stacked_bars"]


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return title or ""
    vmax = max(max(values), 1e-30)
    label_w = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(int(round(value / vmax * width)), 0)
        lines.append(f"{label.ljust(label_w)} |{bar.ljust(width)}| {value:.2f}{unit}")
    return "\n".join(lines)


_FILL = "#=+-.~o*x"


def stacked_bars(
    labels: Sequence[str],
    series: dict[str, Sequence[float]],
    *,
    width: int = 60,
    title: str | None = None,
) -> str:
    """Stacked 100%-style bars (one row per label) from named series.

    Each row's segments are scaled to the row total; a legend maps fill
    characters to series names.
    """
    names = list(series)
    for name in names:
        if len(series[name]) != len(labels):
            raise ValueError(f"series {name!r} length mismatch")
    label_w = max(len(l) for l in labels) if labels else 0
    lines = [title] if title else []
    legend = "  ".join(f"{_FILL[i % len(_FILL)]}={n}" for i, n in enumerate(names))
    lines.append(f"legend: {legend}")
    for row, label in enumerate(labels):
        total = sum(series[n][row] for n in names)
        if total <= 0:
            lines.append(f"{label.ljust(label_w)} |{' ' * width}|")
            continue
        cells: list[str] = []
        for i, n in enumerate(names):
            seg = int(round(series[n][row] / total * width))
            cells.append(_FILL[i % len(_FILL)] * seg)
        bar = "".join(cells)[:width].ljust(width)
        lines.append(f"{label.ljust(label_w)} |{bar}|")
    return "\n".join(lines)
