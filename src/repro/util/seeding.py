"""Deterministic RNG management.

Every stochastic component in the library (stochastic rounding, random
sampling in CocktailSGD, synthetic data generation, weight init) takes an
explicit ``numpy.random.Generator``.  This module provides helpers to
derive independent child generators from a root seed so experiments are
reproducible end to end, including across simulated ranks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_rng", "rng_for_rank"]


def spawn_rng(seed: int | np.random.Generator | None, *key: int) -> np.random.Generator:
    """Return an independent generator derived from ``seed`` and ``key``.

    ``seed`` may be an int, ``None`` (fresh entropy), or an existing
    ``Generator`` (returned unchanged when no key is given).  Integer keys
    create statistically independent streams: the same ``(seed, key)``
    always yields the same stream.
    """
    if isinstance(seed, np.random.Generator):
        if not key:
            return seed
        # Derive a child stream from the generator's bit stream.
        child_seed = int(seed.integers(0, 2**63 - 1))
        return np.random.default_rng(np.random.SeedSequence(entropy=child_seed, spawn_key=key))
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=key))


def rng_for_rank(seed: int, rank: int, *, stream: int = 0) -> np.random.Generator:
    """Generator for a simulated rank; distinct per (rank, stream)."""
    return spawn_rng(seed, rank, stream)
