"""Plain-text table rendering for benchmark harnesses.

Every benchmark prints the rows/series of the paper table or figure it
reproduces; this module renders them in a stable, diff-friendly layout.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table"]


def _cell(value: object, floatfmt: str) -> str:
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    floatfmt: str = ".2f",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_cell(v, floatfmt) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
