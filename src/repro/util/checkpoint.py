"""Checkpointing: save/restore model, K-FAC, optimizer, and compressor state.

Long pre-training runs (the paper's BERT runs take 54 hours) need
resumable state, and post-fault recovery needs *exact* resumability:
a restore must continue the very trajectory the run was on, not re-warm
it.  A checkpoint therefore round-trips, beyond model parameters:

* K-FAC running factors **and** their eigendecompositions, per-layer
  momentum buffers, the first-order momentum of non-K-FAC parameters,
  and the optimizer step counter;
* first-order optimizer state (SGD velocity, Adam/LAMB moments);
* compressor state: the adaptive error-bound schedule position and the
  stochastic-rounding RNG state, so compression decisions after a
  restore are bit-identical to the uninterrupted run.

Writes are **atomic**: the ``.npz`` is produced in a temp file in the
same directory and moved into place with ``os.replace``, so a crash
mid-save can never leave a truncated archive that poisons recovery —
the previous checkpoint survives intact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover — annotations only, avoids an
    # import cycle now that repro.util re-exports this module's names
    from repro.nn.module import Module
    from repro.optim.kfac import Kfac

__all__ = ["CheckpointError", "SCHEMA_VERSION", "save_checkpoint", "load_checkpoint"]

#: Archive layout version.  Version 1 is the pre-versioned layout (no
#: ``meta/*`` keys); version 2 added ``meta/schema_version`` and
#: ``meta/world_size``.  Bump on any incompatible key change.
SCHEMA_VERSION = 2


class CheckpointError(RuntimeError):
    """A checkpoint archive cannot be restored into this process.

    Raised *before* any state is mutated — schema or world-size
    mismatches must fail the restore loudly up front, not as a cryptic
    ``KeyError`` halfway through repopulating optimizer state.
    """


def _final_path(path: str | Path) -> Path:
    """The filename ``np.savez`` would actually produce."""
    path = Path(path)
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")


def _rng_state_array(rng: np.random.Generator) -> np.ndarray:
    """A generator's full bit-generator state as a JSON unicode array."""
    return np.array(json.dumps(rng.bit_generator.state))


def _restore_rng_state(rng: np.random.Generator, stored: np.ndarray) -> None:
    rng.bit_generator.state = json.loads(str(stored[()]))


def _compressor_parts(compressor) -> tuple[object | None, object]:
    """(adaptive wrapper or None, inner CompsoCompressor-like) of a compressor."""
    inner = getattr(compressor, "inner", None)
    if inner is not None and hasattr(compressor, "iteration"):
        return compressor, inner
    return None, compressor


def _collect_compressor(arrays: dict[str, np.ndarray], compressor) -> None:
    adaptive, inner = _compressor_parts(compressor)
    if adaptive is not None:
        arrays["compressor/iteration"] = np.array(adaptive.iteration)
        degraded = getattr(adaptive, "_degraded_until", None)
        if degraded is not None:
            arrays["compressor/degraded_until"] = np.array(degraded)
    if hasattr(inner, "eb_f"):
        arrays["compressor/eb_f"] = np.array(inner.eb_f)
        arrays["compressor/eb_q"] = np.array(inner.eb_q)
    rng = getattr(inner, "_rng", None)
    if isinstance(rng, np.random.Generator):
        arrays["compressor/rng"] = _rng_state_array(rng)


def _restore_compressor(data, compressor) -> None:
    adaptive, inner = _compressor_parts(compressor)
    if adaptive is not None and "compressor/iteration" in data:
        adaptive.iteration = int(data["compressor/iteration"])
        if "compressor/degraded_until" in data and hasattr(adaptive, "_degraded_until"):
            adaptive._degraded_until = int(data["compressor/degraded_until"])
        # Re-derive the schedule's bounds at the restored iteration.
        if hasattr(adaptive, "_apply"):
            adaptive._apply(adaptive.iteration)
    if "compressor/eb_f" in data and hasattr(inner, "set_bounds"):
        inner.set_bounds(float(data["compressor/eb_f"]), float(data["compressor/eb_q"]))
    rng = getattr(inner, "_rng", None)
    if isinstance(rng, np.random.Generator) and "compressor/rng" in data:
        _restore_rng_state(rng, data["compressor/rng"])


def _collect_optimizer(arrays: dict[str, np.ndarray], optimizer) -> None:
    velocity = getattr(optimizer, "_velocity", None)
    if velocity is not None:  # Sgd
        for i, v in enumerate(velocity):
            arrays[f"opt/velocity/{i}"] = v
    if getattr(optimizer, "_m", None) is not None:  # Adam / Lamb
        for i, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
            arrays[f"opt/m/{i}"] = m
            arrays[f"opt/v/{i}"] = v
        arrays["opt/t"] = np.array(optimizer._t)


def _restore_optimizer(data, optimizer) -> None:
    velocity = getattr(optimizer, "_velocity", None)
    if velocity is not None:
        for i in range(len(velocity)):
            key = f"opt/velocity/{i}"
            if key in data:
                velocity[i][...] = data[key]
    if getattr(optimizer, "_m", None) is not None:
        for i in range(len(optimizer._m)):
            if f"opt/m/{i}" in data:
                optimizer._m[i][...] = data[f"opt/m/{i}"]
                optimizer._v[i][...] = data[f"opt/v/{i}"]
        if "opt/t" in data:
            optimizer._t = int(data["opt/t"])


def save_checkpoint(
    path: str | Path,
    model: Module,
    kfac: Kfac | None = None,
    *,
    optimizer=None,
    compressor=None,
    world_size: int | None = None,
) -> None:
    """Atomically write model (+ optional K-FAC/optimizer/compressor) state.

    ``world_size`` stamps the archive with the cluster size it was taken
    at; restores can then reject a checkpoint from a differently-sized
    world (layer-ownership tables and per-rank state are world-indexed).
    """
    arrays: dict[str, np.ndarray] = {"meta/schema_version": np.array(SCHEMA_VERSION)}
    if world_size is not None:
        arrays["meta/world_size"] = np.array(int(world_size))
    for name, p in model.named_parameters():
        arrays[f"param/{name}"] = p.data
    if kfac is not None:
        arrays["kfac/t"] = np.array(kfac.t)
        for idx, st in kfac.state.items():
            if st.A is not None:
                arrays[f"kfac/{idx}/A"] = st.A
                arrays[f"kfac/{idx}/G"] = st.G
                arrays[f"kfac/{idx}/n_updates"] = np.array(st.n_updates)
            if st.ready:
                arrays[f"kfac/{idx}/QA"] = st.QA
                arrays[f"kfac/{idx}/vA"] = st.vA
                arrays[f"kfac/{idx}/QG"] = st.QG
                arrays[f"kfac/{idx}/vG"] = st.vG
            if st.momentum_buf is not None:
                arrays[f"kfac/{idx}/momentum"] = st.momentum_buf
        for i, buf in enumerate(kfac._other_momentum):
            arrays[f"kfac/other_momentum/{i}"] = buf
    if optimizer is not None:
        _collect_optimizer(arrays, optimizer)
    if compressor is not None:
        _collect_compressor(arrays, compressor)

    final = _final_path(path)
    tmp = final.with_name(f".{final.stem}.tmp.npz")
    try:
        np.savez_compressed(tmp, **arrays)
        os.replace(tmp, final)
    finally:
        if tmp.exists():
            tmp.unlink()


def load_checkpoint(
    path: str | Path,
    model: Module,
    kfac: Kfac | None = None,
    *,
    optimizer=None,
    compressor=None,
    expect_world_size: int | None = None,
) -> None:
    """Restore state written by :func:`save_checkpoint` in place.

    Raises :class:`CheckpointError` — before touching any state — when
    the archive's schema version is not one this build understands, or
    when ``expect_world_size`` is given and disagrees with the recorded
    world size.  Raises ``KeyError`` if the checkpoint is missing a
    parameter the model has, and ``ValueError`` on shape mismatches —
    silent partial restores are worse than failing loudly.  Archives
    without ``meta/*`` keys (schema version 1) keep loading; optimizer/
    compressor keys are likewise optional.
    """
    with np.load(_final_path(path)) as data:
        version = int(data["meta/schema_version"]) if "meta/schema_version" in data else 1
        if version > SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint schema version {version} is newer than this build's "
                f"{SCHEMA_VERSION}; refusing a partial restore"
            )
        if expect_world_size is not None:
            stored_world = (
                int(data["meta/world_size"]) if "meta/world_size" in data else None
            )
            if stored_world is None:
                raise CheckpointError(
                    f"checkpoint records no world size (schema version {version}) "
                    f"but the caller requires world_size={expect_world_size}"
                )
            if stored_world != expect_world_size:
                raise CheckpointError(
                    f"checkpoint was taken at world_size={stored_world}, "
                    f"cannot restore into world_size={expect_world_size}"
                )
        for name, p in model.named_parameters():
            key = f"param/{name}"
            if key not in data:
                raise KeyError(f"checkpoint missing parameter {name!r}")
            stored = data[key]
            if stored.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: checkpoint {stored.shape}, model {p.data.shape}"
                )
            p.data = stored.astype(np.float32)
        if kfac is not None:
            if "kfac/t" in data:
                kfac.t = int(data["kfac/t"])
            for idx, st in kfac.state.items():
                a_key = f"kfac/{idx}/A"
                if a_key in data:
                    st.A = data[a_key]
                    st.G = data[f"kfac/{idx}/G"]
                    st.n_updates = int(data[f"kfac/{idx}/n_updates"])
                    if f"kfac/{idx}/QA" in data:
                        # Saved eigendecomposition: restore verbatim so a
                        # resumed run keeps the exact inverse it was using
                        # (recomputing from A/G would re-warm mid-interval).
                        st.QA = data[f"kfac/{idx}/QA"]
                        st.vA = data[f"kfac/{idx}/vA"]
                        st.QG = data[f"kfac/{idx}/QG"]
                        st.vG = data[f"kfac/{idx}/vG"]
                    else:
                        kfac.compute_eigen(idx)
                if f"kfac/{idx}/momentum" in data:
                    st.momentum_buf = data[f"kfac/{idx}/momentum"]
            for i in range(len(kfac._other_momentum)):
                key = f"kfac/other_momentum/{i}"
                if key in data:
                    kfac._other_momentum[i][...] = data[key]
        if optimizer is not None:
            _restore_optimizer(data, optimizer)
        if compressor is not None:
            _restore_compressor(data, compressor)
