"""Checkpointing: save/restore model parameters and K-FAC factor state.

Long pre-training runs (the paper's BERT runs take 54 hours) need
resumable state.  Parameters are stored in a single ``.npz`` keyed by the
model's ``named_parameters`` names; K-FAC running factors are stored
alongside so a resumed run does not have to re-warm covariances.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.module import Module
from repro.optim.kfac import Kfac

__all__ = ["save_checkpoint", "load_checkpoint"]


def save_checkpoint(path: str | Path, model: Module, kfac: Kfac | None = None) -> None:
    """Write model parameters (and optional K-FAC factors) to ``path``."""
    arrays: dict[str, np.ndarray] = {}
    for name, p in model.named_parameters():
        arrays[f"param/{name}"] = p.data
    if kfac is not None:
        for idx, st in kfac.state.items():
            if st.A is not None:
                arrays[f"kfac/{idx}/A"] = st.A
                arrays[f"kfac/{idx}/G"] = st.G
                arrays[f"kfac/{idx}/n_updates"] = np.array(st.n_updates)
    np.savez_compressed(Path(path), **arrays)


def load_checkpoint(path: str | Path, model: Module, kfac: Kfac | None = None) -> None:
    """Restore state written by :func:`save_checkpoint` in place.

    Raises ``KeyError`` if the checkpoint is missing a parameter the
    model has, and ``ValueError`` on shape mismatches — silent partial
    restores are worse than failing loudly.
    """
    with np.load(Path(path)) as data:
        for name, p in model.named_parameters():
            key = f"param/{name}"
            if key not in data:
                raise KeyError(f"checkpoint missing parameter {name!r}")
            stored = data[key]
            if stored.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: checkpoint {stored.shape}, model {p.data.shape}"
                )
            p.data = stored.astype(np.float32)
        if kfac is not None:
            for idx, st in kfac.state.items():
                a_key = f"kfac/{idx}/A"
                if a_key in data:
                    st.A = data[a_key]
                    st.G = data[f"kfac/{idx}/G"]
                    st.n_updates = int(data[f"kfac/{idx}/n_updates"])
                    kfac.compute_eigen(idx)
