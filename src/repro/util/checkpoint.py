"""Checkpointing: save/restore model, K-FAC, optimizer, and compressor state.

Long pre-training runs (the paper's BERT runs take 54 hours) need
resumable state, and post-fault recovery needs *exact* resumability:
a restore must continue the very trajectory the run was on, not re-warm
it.  A checkpoint therefore round-trips, beyond model parameters:

* K-FAC running factors **and** their eigendecompositions, per-layer
  momentum buffers, the first-order momentum of non-K-FAC parameters,
  and the optimizer step counter;
* first-order optimizer state (SGD velocity, Adam/LAMB moments);
* compressor state: the adaptive error-bound schedule position and the
  stochastic-rounding RNG state, so compression decisions after a
  restore are bit-identical to the uninterrupted run.

Writes are **atomic and sealed**: the ``.npz`` is produced in a
writer-unique temp file in the same directory and moved into place with
``os.replace``, so a crash mid-save can never leave a truncated archive
that poisons recovery — the previous checkpoint survives intact.  Every
archive carries a content seal (``meta/content_crc32``, a CRC over the
raw array bytes of every section) computed *before* the bytes hit disk;
:func:`verify_checkpoint` and ``load_checkpoint(verify=...)`` recompute
it, so bit-rot at rest is detected before any state is mutated.

The save sequence exposes its injection points (:data:`SAVE_POINTS`)
through the ``hooks`` callback, which is how the storage fault plane
(:mod:`repro.faults.storage`) makes "kill the process at any point
during save" an enumerable, deterministic test instead of a hope.
"""

from __future__ import annotations

import itertools
import json
import os
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover — annotations only, avoids an
    # import cycle now that repro.util re-exports this module's names
    from repro.nn.module import Module
    from repro.optim.kfac import Kfac

__all__ = [
    "CheckpointError",
    "SAVE_POINTS",
    "SCHEMA_VERSION",
    "content_crc32",
    "load_checkpoint",
    "read_meta",
    "save_checkpoint",
    "verify_checkpoint",
]

#: Archive layout version.  Version 1 is the pre-versioned layout (no
#: ``meta/*`` keys); version 2 added ``meta/schema_version`` and
#: ``meta/world_size``; version 3 added the ``meta/content_crc32`` seal
#: and the optional ``meta/step`` stamp.  Bump on any incompatible key
#: change.
SCHEMA_VERSION = 3

#: Enumerated injection points of the archive save sequence, in order.
#: A crash at ``save:begin`` loses the save entirely; at
#: ``save:tmp_written`` the temp file exists but the final path is
#: untouched; at ``save:replaced`` the new archive is in place but the
#: caller (e.g. a :class:`repro.store.CheckpointStore` manifest update)
#: has not yet run.  Stores extend this sequence with their own points.
SAVE_POINTS = ("save:begin", "save:tmp_written", "save:replaced")

#: Per-process monotone counter making temp names writer-unique: two
#: stores checkpointing same-named stems into one directory must never
#: race on a shared ``.{stem}.tmp.npz`` (a torn ``os.replace`` of the
#: other writer's half-written file would corrupt both).
_TMP_COUNTER = itertools.count()


class CheckpointError(RuntimeError):
    """A checkpoint archive cannot be restored into this process.

    Raised *before* any state is mutated — schema or world-size
    mismatches, unreadable/torn archives, broken content seals, and
    partial sections must fail the restore loudly up front, not as a
    cryptic ``KeyError`` halfway through repopulating optimizer state.
    """


def _final_path(path: str | Path) -> Path:
    """The filename ``np.savez`` would actually produce."""
    path = Path(path)
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")


def _rng_state_array(rng: np.random.Generator) -> np.ndarray:
    """A generator's full bit-generator state as a JSON unicode array."""
    return np.array(json.dumps(rng.bit_generator.state))


def _restore_rng_state(rng: np.random.Generator, stored: np.ndarray) -> None:
    rng.bit_generator.state = json.loads(str(stored[()]))


def content_crc32(arrays: dict[str, np.ndarray]) -> int:
    """CRC32 seal over every section's name, dtype, shape, and raw bytes.

    Keys are visited in sorted order so the seal is layout-independent;
    the ``meta/content_crc32`` entry itself is excluded (it cannot seal
    its own value).
    """
    crc = 0
    for key in sorted(arrays):
        if key == "meta/content_crc32":
            continue
        arr = np.asarray(arrays[key])
        header = f"{key}|{arr.dtype.str}|{arr.shape}".encode()
        crc = zlib.crc32(header, crc)
        crc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)
    return crc & 0xFFFFFFFF


def _compressor_parts(compressor) -> tuple[object | None, object]:
    """(adaptive wrapper or None, inner CompsoCompressor-like) of a compressor."""
    inner = getattr(compressor, "inner", None)
    if inner is not None and hasattr(compressor, "iteration"):
        return compressor, inner
    return None, compressor


def _collect_compressor(arrays: dict[str, np.ndarray], compressor) -> None:
    adaptive, inner = _compressor_parts(compressor)
    if adaptive is not None:
        arrays["compressor/iteration"] = np.array(adaptive.iteration)
        degraded = getattr(adaptive, "_degraded_until", None)
        if degraded is not None:
            arrays["compressor/degraded_until"] = np.array(degraded)
    if hasattr(inner, "eb_f"):
        arrays["compressor/eb_f"] = np.array(inner.eb_f)
        arrays["compressor/eb_q"] = np.array(inner.eb_q)
    rng = getattr(inner, "_rng", None)
    if isinstance(rng, np.random.Generator):
        arrays["compressor/rng"] = _rng_state_array(rng)


def _restore_compressor(data, compressor) -> None:
    adaptive, inner = _compressor_parts(compressor)
    if adaptive is not None and "compressor/iteration" in data:
        adaptive.iteration = int(data["compressor/iteration"])
        if "compressor/degraded_until" in data and hasattr(adaptive, "_degraded_until"):
            adaptive._degraded_until = int(data["compressor/degraded_until"])
        # Re-derive the schedule's bounds at the restored iteration.
        if hasattr(adaptive, "_apply"):
            adaptive._apply(adaptive.iteration)
    if "compressor/eb_f" in data and hasattr(inner, "set_bounds"):
        inner.set_bounds(float(data["compressor/eb_f"]), float(data["compressor/eb_q"]))
    rng = getattr(inner, "_rng", None)
    if isinstance(rng, np.random.Generator) and "compressor/rng" in data:
        _restore_rng_state(rng, data["compressor/rng"])


def _collect_optimizer(arrays: dict[str, np.ndarray], optimizer) -> None:
    velocity = getattr(optimizer, "_velocity", None)
    if velocity is not None:  # Sgd
        for i, v in enumerate(velocity):
            arrays[f"opt/velocity/{i}"] = v
    if getattr(optimizer, "_m", None) is not None:  # Adam / Lamb
        for i, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
            arrays[f"opt/m/{i}"] = m
            arrays[f"opt/v/{i}"] = v
        arrays["opt/t"] = np.array(optimizer._t)


def _take(data: dict, key: str, like: np.ndarray) -> np.ndarray:
    """Fetch an ``opt/*`` section entry, validating presence and shape."""
    if key not in data:
        raise CheckpointError(
            f"checkpoint optimizer state is incomplete: missing {key!r}"
        )
    stored = data[key]
    if stored.shape != like.shape:
        raise CheckpointError(
            f"checkpoint optimizer state {key!r} has shape {stored.shape}, "
            f"expected {like.shape}"
        )
    return stored


def _restore_optimizer(data, optimizer) -> None:
    """Restore Sgd velocity or Adam/Lamb moments, loudly.

    A checkpoint saved without optimizer state has *no* ``opt/*`` keys;
    restoring an optimizer from it is a silent partial restore and
    raises.  A checkpoint with *some* ``opt/*`` keys must have all of
    them, with matching shapes — anything else names the offending key.
    """
    has_opt = any(k.startswith("opt/") for k in data.keys())
    velocity = getattr(optimizer, "_velocity", None)
    moments = getattr(optimizer, "_m", None)
    if velocity is None and moments is None:
        return  # optimizer holds no state yet (no step taken): nothing to fill
    if not has_opt:
        raise CheckpointError(
            "checkpoint contains no optimizer state (no 'opt/*' keys) but an "
            "optimizer was passed to load_checkpoint — refusing a silent "
            "partial restore"
        )
    if velocity is not None:
        for i in range(len(velocity)):
            velocity[i][...] = _take(data, f"opt/velocity/{i}", velocity[i])
    if moments is not None:
        for i in range(len(moments)):
            optimizer._m[i][...] = _take(data, f"opt/m/{i}", optimizer._m[i])
            optimizer._v[i][...] = _take(data, f"opt/v/{i}", optimizer._v[i])
        if "opt/t" not in data:
            raise CheckpointError("checkpoint optimizer state is incomplete: missing 'opt/t'")
        optimizer._t = int(data["opt/t"])


def _no_hooks(point: str, path: Path) -> None:
    return None


def save_checkpoint(
    path: str | Path,
    model: Module,
    kfac: Kfac | None = None,
    *,
    optimizer=None,
    compressor=None,
    world_size: int | None = None,
    step: int | None = None,
    hooks: Callable[[str, Path], None] | None = None,
) -> Path:
    """Atomically write model (+ optional K-FAC/optimizer/compressor) state.

    ``world_size`` stamps the archive with the cluster size it was taken
    at; restores can then reject a checkpoint from a differently-sized
    world (layer-ownership tables and per-rank state are world-indexed).
    ``step`` stamps the training step the archive represents (stores use
    it to resume from the right batch after a generation fallback).

    ``hooks(point, path)`` is called at each :data:`SAVE_POINTS` stage —
    the storage fault plane uses it to inject crashes and torn writes at
    deterministic points.  Returns the final archive path.
    """
    hook = hooks if hooks is not None else _no_hooks
    arrays: dict[str, np.ndarray] = {"meta/schema_version": np.array(SCHEMA_VERSION)}
    if world_size is not None:
        arrays["meta/world_size"] = np.array(int(world_size))
    if step is not None:
        arrays["meta/step"] = np.array(int(step))
    for name, p in model.named_parameters():
        arrays[f"param/{name}"] = p.data
    if kfac is not None:
        arrays["kfac/t"] = np.array(kfac.t)
        for idx, st in kfac.state.items():
            if st.A is not None:
                arrays[f"kfac/{idx}/A"] = st.A
                arrays[f"kfac/{idx}/G"] = st.G
                arrays[f"kfac/{idx}/n_updates"] = np.array(st.n_updates)
            if st.ready:
                arrays[f"kfac/{idx}/QA"] = st.QA
                arrays[f"kfac/{idx}/vA"] = st.vA
                arrays[f"kfac/{idx}/QG"] = st.QG
                arrays[f"kfac/{idx}/vG"] = st.vG
            if st.momentum_buf is not None:
                arrays[f"kfac/{idx}/momentum"] = st.momentum_buf
        for i, buf in enumerate(kfac._other_momentum):
            arrays[f"kfac/other_momentum/{i}"] = buf
    if optimizer is not None:
        _collect_optimizer(arrays, optimizer)
    if compressor is not None:
        _collect_compressor(arrays, compressor)
    arrays["meta/content_crc32"] = np.array(content_crc32(arrays), dtype=np.uint32)

    final = _final_path(path)
    tmp = final.with_name(f".{final.stem}.tmp.{os.getpid()}-{next(_TMP_COUNTER)}.npz")
    try:
        hook("save:begin", final)
        np.savez_compressed(tmp, **arrays)
        hook("save:tmp_written", tmp)
        os.replace(tmp, final)
        hook("save:replaced", final)
    finally:
        if tmp.exists():
            tmp.unlink()
    return final


def _open_archive(path: Path):
    """``np.load`` with torn/garbage archives surfaced as CheckpointError."""
    import zipfile

    try:
        return np.load(path)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, EOFError, ValueError, KeyError) as exc:
        raise CheckpointError(f"{path}: unreadable checkpoint archive ({exc})") from exc


def _read_all(path: Path) -> dict[str, np.ndarray]:
    """Fully materialise an archive, surfacing member corruption loudly.

    ``np.load`` is lazy: a flipped byte inside a member only explodes
    when that member is accessed, which without this step could be
    halfway through a restore.  Reading (and CRC-checking, via the zip
    layer) every member up front guarantees corruption is detected
    before any state is mutated.
    """
    import zipfile

    with _open_archive(path) as data:
        try:
            return {key: data[key] for key in data.files}
        except (zipfile.BadZipFile, OSError, EOFError, ValueError, KeyError) as exc:
            raise CheckpointError(f"{path}: corrupt checkpoint section ({exc})") from exc
        except zlib.error as exc:
            raise CheckpointError(f"{path}: corrupt checkpoint section ({exc})") from exc


def read_meta(data: dict[str, np.ndarray]) -> dict:
    """The ``meta/*`` section of a materialised archive as plain ints."""
    meta: dict = {
        "schema_version": int(data["meta/schema_version"])
        if "meta/schema_version" in data
        else 1
    }
    for key, name in (("meta/world_size", "world_size"), ("meta/step", "step")):
        if key in data:
            meta[name] = int(data[key])
    if "meta/content_crc32" in data:
        meta["content_crc32"] = int(data["meta/content_crc32"])
    return meta


def verify_checkpoint(path: str | Path) -> dict:
    """Verify an archive's content seal without restoring anything.

    Returns the archive's meta dict (``schema_version``, optional
    ``world_size``/``step``, ``content_crc32``, plus ``sealed``: whether
    a seal was present to check).  Raises :class:`CheckpointError` on an
    unreadable archive or a seal mismatch; pre-seal archives (schema
    version < 3) verify structurally only, with ``sealed=False``.
    """
    data = _read_all(_final_path(path))
    meta = read_meta(data)
    stored = meta.get("content_crc32")
    if stored is None:
        meta["sealed"] = False
        return meta
    actual = content_crc32(data)
    if actual != stored:
        raise CheckpointError(
            f"{_final_path(path)}: content seal mismatch "
            f"(stored crc32 {stored:#010x}, actual {actual:#010x}) — bit rot "
            f"or tampering"
        )
    meta["sealed"] = True
    return meta


def _expected_factor_dims(kfac, idx: int) -> tuple[int, int]:
    """(in_features+bias, out_features) — the A/G factor dimensions."""
    layer = kfac.layers[idx]
    out_f = layer.weight.shape[0]
    in_f = int(np.prod(layer.weight.shape[1:]))
    if getattr(layer, "bias", None) is not None:
        in_f += 1
    return in_f, out_f


def _check_shape(key: str, arr: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    if arr.shape != shape:
        raise CheckpointError(
            f"checkpoint K-FAC state {key!r} has shape {arr.shape}, expected {shape}"
        )
    return arr


def _restore_kfac(data, kfac) -> None:
    """Restore K-FAC factors with full shape validation.

    Every factor array is validated against the model's layer dimensions
    before any assignment: A must be (in+bias)², G out², eigenvector/
    eigenvalue arrays must match their factors, and the momentum buffer
    must match the layer's gradient shape.  A factor section that is
    present but incomplete (A without G/n_updates, QA without vG, ...)
    raises naming the missing key — a half-restored preconditioner is a
    silently wrong trajectory, not a recovery.
    """
    if "kfac/t" in data:
        kfac.t = int(data["kfac/t"])
    for idx, st in kfac.state.items():
        in_f, out_f = _expected_factor_dims(kfac, idx)
        a_key = f"kfac/{idx}/A"
        if a_key in data:
            for needed in (f"kfac/{idx}/G", f"kfac/{idx}/n_updates"):
                if needed not in data:
                    raise CheckpointError(
                        f"checkpoint K-FAC state is incomplete: {a_key!r} present "
                        f"but {needed!r} missing"
                    )
            A = _check_shape(a_key, data[a_key], (in_f, in_f))
            G = _check_shape(f"kfac/{idx}/G", data[f"kfac/{idx}/G"], (out_f, out_f))
            st.A = A
            st.G = G
            st.n_updates = int(data[f"kfac/{idx}/n_updates"])
            if f"kfac/{idx}/QA" in data:
                # Saved eigendecomposition: restore verbatim so a resumed
                # run keeps the exact inverse it was using (recomputing
                # from A/G would re-warm mid-interval).
                for needed in (f"kfac/{idx}/vA", f"kfac/{idx}/QG", f"kfac/{idx}/vG"):
                    if needed not in data:
                        raise CheckpointError(
                            f"checkpoint K-FAC state is incomplete: "
                            f"'kfac/{idx}/QA' present but {needed!r} missing"
                        )
                st.QA = _check_shape(f"kfac/{idx}/QA", data[f"kfac/{idx}/QA"], (in_f, in_f))
                st.vA = _check_shape(f"kfac/{idx}/vA", data[f"kfac/{idx}/vA"], (in_f,))
                st.QG = _check_shape(f"kfac/{idx}/QG", data[f"kfac/{idx}/QG"], (out_f, out_f))
                st.vG = _check_shape(f"kfac/{idx}/vG", data[f"kfac/{idx}/vG"], (out_f,))
            else:
                kfac.compute_eigen(idx)
        if f"kfac/{idx}/momentum" in data:
            st.momentum_buf = _check_shape(
                f"kfac/{idx}/momentum", data[f"kfac/{idx}/momentum"], (out_f, in_f)
            )
    for i in range(len(kfac._other_momentum)):
        key = f"kfac/other_momentum/{i}"
        if key in data:
            if data[key].shape != kfac._other_momentum[i].shape:
                raise CheckpointError(
                    f"checkpoint K-FAC state {key!r} has shape {data[key].shape}, "
                    f"expected {kfac._other_momentum[i].shape}"
                )
            kfac._other_momentum[i][...] = data[key]


def load_checkpoint(
    path: str | Path,
    model: Module,
    kfac: Kfac | None = None,
    *,
    optimizer=None,
    compressor=None,
    expect_world_size: int | None = None,
    verify: bool | None = None,
) -> dict:
    """Restore state written by :func:`save_checkpoint` in place.

    Raises :class:`CheckpointError` — before touching any state — when
    the archive is unreadable or torn, its content seal does not match
    (``verify=None``, the default, checks the seal whenever one is
    present; ``verify=True`` additionally *requires* one), the schema
    version is not one this build understands, ``expect_world_size``
    disagrees with the recorded world size, or any K-FAC/optimizer
    section is partial or mis-shaped.  Raises ``KeyError`` if the
    checkpoint is missing a parameter the model has, and ``ValueError``
    on parameter shape mismatches — silent partial restores are worse
    than failing loudly.  Archives without ``meta/*`` keys (schema
    version 1) keep loading; optimizer/compressor keys are likewise
    optional *as whole sections*.

    Returns the archive's meta dict (schema version, world size, step).
    """
    data = _read_all(_final_path(path))
    meta = read_meta(data)
    version = meta["schema_version"]
    if version > SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint schema version {version} is newer than this build's "
            f"{SCHEMA_VERSION}; refusing a partial restore"
        )
    stored_crc = meta.get("content_crc32")
    if verify and stored_crc is None:
        raise CheckpointError(
            f"{_final_path(path)}: verify=True but the archive carries no "
            f"content seal (schema version {version})"
        )
    if stored_crc is not None and verify is not False:
        actual = content_crc32(data)
        if actual != stored_crc:
            raise CheckpointError(
                f"{_final_path(path)}: content seal mismatch "
                f"(stored crc32 {stored_crc:#010x}, actual {actual:#010x})"
            )
    if expect_world_size is not None:
        stored_world = meta.get("world_size")
        if stored_world is None:
            raise CheckpointError(
                f"checkpoint records no world size (schema version {version}) "
                f"but the caller requires world_size={expect_world_size}"
            )
        if stored_world != expect_world_size:
            raise CheckpointError(
                f"checkpoint was taken at world_size={stored_world}, "
                f"cannot restore into world_size={expect_world_size}"
            )
    for name, p in model.named_parameters():
        key = f"param/{name}"
        if key not in data:
            raise KeyError(f"checkpoint missing parameter {name!r}")
        stored = data[key]
        if stored.shape != p.data.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: checkpoint {stored.shape}, model {p.data.shape}"
            )
        p.data = stored.astype(np.float32)
    if kfac is not None:
        _restore_kfac(data, kfac)
    if optimizer is not None:
        _restore_optimizer(data, optimizer)
    if compressor is not None:
        _restore_compressor(data, compressor)
    return meta
