"""Vectorised bit packing.

Packs unsigned integers of arbitrary bit width (1..32) into a dense byte
stream, and boolean bitmaps into packed bits.  These are the building
blocks of COMPSO's bitmap filter and variable-width quantised-value
packing (paper section 4.3: "packing bits into bytes based on the specified
error bound" is what lets COMPSO beat fixed 8-bit formats by ~14%).

All routines are vectorised NumPy; no per-element Python loops.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_uints", "unpack_uints", "pack_bitmap", "unpack_bitmap", "required_width"]


def required_width(max_value: int) -> int:
    """Minimum bit width able to represent ``max_value`` (>= 1 bit)."""
    if max_value < 0:
        raise ValueError(f"max_value must be non-negative, got {max_value}")
    return max(1, int(max_value).bit_length())


def pack_uints(values: np.ndarray, width: int) -> bytes:
    """Pack unsigned integers into ``width``-bit fields, MSB first.

    ``values`` must all be ``< 2**width``.  Returns the packed bytes; the
    caller is responsible for remembering ``len(values)`` and ``width``.
    """
    if not 1 <= width <= 32:
        raise ValueError(f"width must be in [1, 32], got {width}")
    v = np.ascontiguousarray(values, dtype=np.uint64).ravel()
    if v.size == 0:
        return b""
    if v.max() >= (1 << width):
        raise ValueError(f"value {v.max()} does not fit in {width} bits")
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((v[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits.ravel()).tobytes()


def unpack_uints(blob: bytes, width: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_uints`; returns ``uint32`` array of ``count`` values."""
    if count == 0:
        return np.empty(0, dtype=np.uint32)
    bits = np.unpackbits(np.frombuffer(blob, dtype=np.uint8), count=count * width)
    bits = bits.reshape(count, width).astype(np.uint64)
    weights = (np.uint64(1) << np.arange(width - 1, -1, -1, dtype=np.uint64))
    return (bits @ weights).astype(np.uint32)


def pack_bitmap(mask: np.ndarray) -> bytes:
    """Pack a boolean mask into bits (1 bit per element, MSB first)."""
    return np.packbits(np.ascontiguousarray(mask, dtype=np.uint8).ravel()).tobytes()


def unpack_bitmap(blob: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bitmap`; returns a boolean array of ``count`` elements."""
    if count == 0:
        return np.empty(0, dtype=bool)
    return np.unpackbits(np.frombuffer(blob, dtype=np.uint8), count=count).astype(bool)
