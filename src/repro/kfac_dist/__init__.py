"""Distributed K-FAC (KAISA-style): real data-plane trainer + timing model."""

from repro.kfac_dist.assignment import assign_layers, eig_cost
from repro.kfac_dist.timing import (
    MODEL_TIMING_PROFILES,
    CompressionSpec,
    IterationBreakdown,
    KfacIterationModel,
    TimingProfile,
)
from repro.kfac_dist.pipefisher import PipeFisherModel, PipelineBreakdown
from repro.kfac_dist.trainer import DistributedKfacTrainer

__all__ = [
    "DistributedKfacTrainer",
    "assign_layers",
    "eig_cost",
    "KfacIterationModel",
    "IterationBreakdown",
    "CompressionSpec",
    "TimingProfile",
    "MODEL_TIMING_PROFILES",
    "PipeFisherModel",
    "PipelineBreakdown",
]
