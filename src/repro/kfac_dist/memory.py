"""GPU memory model for distributed K-FAC training (paper sections 2.2, 6).

The paper's argument against pipeline parallelism (PipeFisher) rests on
memory: K-FAC's factor/eigenvector state plus training state fits on
modern 40-80 GB GPUs for the models it accelerates, so plain data
parallelism suffices.  This module estimates the per-GPU footprint:

* model weights + gradients + momentum (fp32 or mixed precision);
* activations for the backward pass (batch and resolution dependent);
* K-FAC state: running factors A/G, their eigenvectors, and eigenvalues
  — roughly ``2 x factor_bytes`` beyond the factors themselves;
* workspace for the largest eigendecomposition.

Estimates land within the right few-GB bracket — enough to reproduce the
paper's qualitative claim (BERT-large K-FAC fits a 40 GB A100 but not a
16 GB P100/V100) and to drive placement decisions, not to replace a real
allocator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.catalogs import LayerShape

__all__ = ["MemoryEstimate", "estimate_kfac_memory", "fits_on"]

#: Common GPU memory capacities, bytes.
GPU_MEMORY = {
    "p100-16gb": 16e9,
    "v100-16gb": 16e9,
    "v100-32gb": 32e9,
    "a100-40gb": 40e9,
    "a100-80gb": 80e9,
    "h200-141gb": 141e9,
}


@dataclass
class MemoryEstimate:
    """Per-GPU memory footprint, bytes by component."""

    weights: float
    gradients: float
    optimizer_state: float
    activations: float
    kfac_factors: float
    kfac_eigen: float
    workspace: float

    @property
    def total(self) -> float:
        return (
            self.weights
            + self.gradients
            + self.optimizer_state
            + self.activations
            + self.kfac_factors
            + self.kfac_eigen
            + self.workspace
        )

    def breakdown_gb(self) -> dict[str, float]:
        return {
            "weights": self.weights / 1e9,
            "gradients": self.gradients / 1e9,
            "optimizer_state": self.optimizer_state / 1e9,
            "activations": self.activations / 1e9,
            "kfac_factors": self.kfac_factors / 1e9,
            "kfac_eigen": self.kfac_eigen / 1e9,
            "workspace": self.workspace / 1e9,
            "total": self.total / 1e9,
        }


def _output_elements(layer: LayerShape) -> float:
    """Per-sample output activation count, derived from the FLOP count.

    Exact for both layer kinds: conv FLOPs are ``2*cout*cin*k^2*oh*ow``
    and the output is ``cout*oh*ow``; FC FLOPs are ``2*in*out*seq`` and
    the output is ``out*seq`` — either way output = flops / (2 * fan_in).
    """
    fan_in = max(layer.in_f - 1, 1)  # strip the bias column
    return layer.fwd_flops / (2.0 * fan_in)


def estimate_kfac_memory(
    catalog: list[LayerShape],
    *,
    per_gpu_batch: int,
    bytes_per_param: float = 4.0,
    activation_multiplier: float = 2.0,
    momentum: bool = True,
) -> MemoryEstimate:
    """Estimate one worker's memory for K-FAC training of ``catalog``.

    ``activation_multiplier`` covers the extra per-layer tensors kept for
    backward besides the layer outputs (normalisation statistics,
    activation-function inputs); 2.0 reproduces measured fp32 footprints
    within ~2x for both CNNs and transformers.
    """
    params = sum(l.grad_elems for l in catalog)
    weights = params * bytes_per_param
    gradients = params * 4.0
    optimizer_state = params * 4.0 if momentum else 0.0
    act_elems = sum(_output_elements(l) for l in catalog) * per_gpu_batch
    activations = act_elems * 4.0 * activation_multiplier
    factor_elems = sum(l.factor_elems for l in catalog)
    kfac_factors = factor_elems * 4.0
    kfac_eigen = factor_elems * 4.0 + sum((l.in_f + l.out_f) * 4.0 for l in catalog)
    largest = max(max(l.in_f, l.out_f) for l in catalog)
    workspace = 3.0 * largest * largest * 4.0
    return MemoryEstimate(
        weights, gradients, optimizer_state, activations, kfac_factors, kfac_eigen, workspace
    )


def fits_on(estimate: MemoryEstimate, gpu: str, *, reserve_fraction: float = 0.1) -> bool:
    """Whether the footprint fits the named GPU, keeping a reserve for
    CUDA context, fragmentation and comm buffers."""
    try:
        capacity = GPU_MEMORY[gpu]
    except KeyError:
        raise KeyError(f"unknown GPU {gpu!r}; known: {sorted(GPU_MEMORY)}") from None
    return estimate.total <= capacity * (1.0 - reserve_fraction)
