"""KAISA-style distributed K-FAC trainer with pluggable compression.

Implements the five-step workflow of paper Fig. 2 on the simulated
cluster, with KAISA's refinements (section 2.2):

1. per-rank covariance computation from local shards;
2. factor **allreduce** (category ``kfac_allreduce``);
3. **eigendecomposition** of each layer by its assigned owner rank only
   (greedy LPT assignment, category ``kfac_compute``);
4. preconditioned-gradient computation on the owner;
5. eager per-layer **allgather** of preconditioned gradients (category
   ``kfac_allgather``), optionally *compressed* — this is the payload
   COMPSO targets.

One shared model evaluates every rank's shard sequentially, which is
numerically identical to synchronized replicas; compression is applied
exactly once per layer by its owner, and every rank applies the same
decompressed update, matching the paper's observation that K-FAC's
allgather pattern avoids ring-allreduce error propagation.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.compression.base import GradientCompressor
from repro.core.adaptive import AdaptiveCompso
from repro.data.loaders import batch_indices, shard
from repro.distributed.cluster import SimCluster
from repro.distributed.plane import map_payloads
from repro.faults.plan import FailureEvent
from repro.faults.recovery import ReliableChannel
from repro.guard.guard import as_guard
from repro.kfac_dist.assignment import assign_layers, eig_cost
from repro.optim.kfac import Kfac
from repro.telemetry import get_metrics, get_tracer
from repro.train.trainer import TrainHistory
from repro.util.checkpoint import load_checkpoint, save_checkpoint

__all__ = ["DistributedKfacTrainer"]


class DistributedKfacTrainer:
    """Data-parallel K-FAC training with compressed gradient allgather."""

    def __init__(
        self,
        model,
        task,
        cluster: SimCluster,
        *,
        lr: float = 0.05,
        lr_schedule=None,
        damping: float = 1e-2,
        factor_decay: float = 0.95,
        inv_update_freq: int = 10,
        momentum: float = 0.9,
        kl_clip: float = 1e-3,
        compressor: GradientCompressor | None = None,
        factor_compressor: GradientCompressor | None = None,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int = 0,
        checkpoint_store=None,
        runtime=None,
        guard=None,
        reliable_channel: bool = True,
        obsv=None,
        autotune=None,
        xray=None,
    ):
        self.model = model
        self.task = task
        self.cluster = cluster
        self.lr_schedule = lr_schedule
        self.compressor = compressor
        #: Optional :class:`repro.runtime.StreamRuntime`.  When set, the
        #: gradient allreduce is issued in buckets during (modelled)
        #: backward, factor allreduces are coalesced and issued
        #: nonblocking, and each layer's preconditioned-gradient
        #: broadcast travels while the owner preconditions the next
        #: layer.  Numerics are bit-identical to the blocking path.
        self.runtime = runtime
        #: Optional compressor for the factor allreduce payload (paper
        #: section 7 future work; see repro.core.factor_compression).
        self.factor_compressor = factor_compressor
        self.factor_ratios: list[float] = []
        self.kfac = Kfac(
            model,
            lr=lr,
            damping=damping,
            factor_decay=factor_decay,
            inv_update_freq=inv_update_freq,
            momentum=momentum,
            kl_clip=kl_clip,
        )
        costs = [
            eig_cost(*self._layer_dims(i)) for i in range(len(self.kfac.layers))
        ]
        self.owners = assign_layers(costs, cluster.world_size)
        self.t = 0
        self.history = TrainHistory()
        #: Wire bytes actually allgathered (compressed) per iteration.
        self.bytes_on_wire: list[float] = []
        self.bytes_original: list[float] = []
        # Fault tolerance: checksummed transfers when faults are in play,
        # periodic checkpoints for hard-failure recovery.  The checksum
        # channel can be declined (``reliable_channel=False``) to model
        # deployments whose collectives don't verify payloads — the
        # regime the guard subsystem is designed to survive.
        # The timing track admits no data-plane faults (TRACK_PLANES), so
        # a checksum channel there would only verify its own clean seal
        # world_size times per broadcast — skip it.
        self._channel = (
            ReliableChannel(cluster)
            if cluster.faults is not None and reliable_channel and not cluster.is_timing
            else None
        )
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        self.checkpoint_every = checkpoint_every
        #: Optional :class:`repro.store.CheckpointStore`.  When set,
        #: periodic checkpoints become sealed, versioned generations and
        #: every restore verifies both seals, falling back to the newest
        #: verified generation on damage.  ``None`` (the default) keeps
        #: the single-file ``checkpoint_dir`` behaviour bit-identical.
        self.checkpoint_store = checkpoint_store
        self._last_checkpoint: Path | None = None
        #: Optional :class:`repro.guard.Guard` (or GuardConfig): numerical
        #: sentinels, divergence detection, and self-healing remediation.
        #: ``None`` (the default) is bit-identical to the unguarded trainer.
        self.guard = as_guard(guard)
        self._guard_grad_norm = float("nan")
        if self.guard is not None:
            self.guard.bind(
                compressor=self.compressor, kfac=self.kfac, trainer=self, cluster=cluster
            )
            self.guard.attach_runtime(self.runtime)
        #: Optional :class:`repro.obsv.LedgerConfig` (or LedgerWriter):
        #: the run ledger folding metrics, span digests, overlap
        #: accounting, and guard events into one artifact per run.
        #: ``None`` (the default) is bit-identical to before — the
        #: writer only reads trainer state and never consumes RNG.
        #: Optional :class:`repro.autotune.AutotuneConfig` (or controller):
        #: closed-loop cost-model retuning of the compression stack.
        #: ``None`` (the default) is bit-identical to before — the
        #: controller only reads trainer state and owns its own probe RNG.
        from repro.autotune.controller import as_autotune

        self.autotune = as_autotune(autotune)
        if self.autotune is not None:
            self.autotune.bind(
                trainer=self,
                cluster=cluster,
                guard=self.guard,
                compressor=self.compressor,
                category="kfac_allgather",
            )
        #: Optional :class:`repro.xray.XrayConfig` (or analyzer, or
        #: ``True``): per-step critical-path attribution over the span
        #: stream.  ``None`` (the default) is bit-identical to before —
        #: the analyzer only reads tracer/cluster state.
        from repro.xray import as_xray

        self.xray = as_xray(xray)
        if self.xray is not None:
            self.xray.bind(trainer=self, cluster=cluster, runtime=self.runtime)
        from repro.obsv.ledger import as_ledger

        self.obsv = as_ledger(obsv)
        if self.obsv is not None:
            self.obsv.bind(
                kind="kfac",
                trainer=self,
                cluster=cluster,
                runtime=self.runtime,
                guard=self.guard,
                compressor=self.compressor,
                factor_compressor=self.factor_compressor,
                autotune=self.autotune,
                xray=self.xray,
            )

    def _layer_dims(self, idx: int) -> tuple[int, int]:
        layer = self.kfac.layers[idx]
        out_f = layer.weight.shape[0]
        in_f = int(np.prod(layer.weight.shape[1:]))
        if getattr(layer, "bias", None) is not None:
            in_f += 1
        return in_f, out_f

    # -- gradient helpers -------------------------------------------------------

    def _other_flat_grad(self) -> np.ndarray:
        if not self.kfac.other_params:
            return np.zeros(0, dtype=np.float32)
        return np.concatenate([p.grad.ravel() for p in self.kfac.other_params])

    def _set_other_flat_grad(self, flat: np.ndarray) -> None:
        pos = 0
        for p in self.kfac.other_params:
            p.grad = flat[pos : pos + p.size].reshape(p.shape).astype(np.float32)
            pos += p.size

    def _kfac_flat_grads(self) -> np.ndarray:
        return np.concatenate(
            [self.kfac.layers[i].kfac_weight_grad().ravel() for i in range(len(self.kfac.layers))]
        )

    def _set_kfac_flat_grads(self, flat: np.ndarray) -> None:
        pos = 0
        for i in range(len(self.kfac.layers)):
            in_f, out_f = self._layer_dims(i)
            size = in_f * out_f
            self.kfac.layers[i].set_kfac_weight_grad(
                flat[pos : pos + size].reshape(out_f, in_f).astype(np.float32)
            )
            pos += size

    # -- one training iteration ---------------------------------------------------

    def step(self, global_idx: np.ndarray) -> float:
        tracer = get_tracer()
        with tracer.span("step", "step", step=self.t):
            return self._step(global_idx, tracer)

    def _trimmed_shards(self, global_idx: np.ndarray) -> list[np.ndarray]:
        world = self.cluster.world_size
        rem = len(global_idx) % world
        if self.cluster.faults is not None and rem and rem < len(global_idx):
            # Elastic continuation: after a world shrink the global batch
            # may not divide evenly; trim the remainder so shards stay
            # consistent (averaging rescales automatically to the new world).
            # When the batch is smaller than the world the remainder is the
            # whole batch — keep it, the representative shard below still
            # needs at least one sample.
            global_idx = global_idx[: len(global_idx) - rem]
        if self.cluster.is_timing:
            # Representative rank: run one shard of the per-rank size so
            # compute timing matches what every rank would do.
            return [global_idx[: max(1, len(global_idx) // world)]]
        return shard(global_idx, world)

    def _local_shard_pass(self, shards: list[np.ndarray], tracer):
        """Per-shard forward/backward; collect grads and K-FAC factors."""
        losses: list[float] = []
        per_rank_grads: list[np.ndarray] = []
        per_rank_other: list[np.ndarray] = []
        per_rank_factors: list[list[tuple[np.ndarray, np.ndarray]]] = []
        for r, idx in enumerate(shards):
            self.model.zero_grad()
            x, y = self.task.batch(idx)
            with tracer.span("forward", "forward", shard=r):
                out = self.model(x)
                loss, dl = self.task.loss_and_grad(out, y)
            with tracer.span("backward", "backward", shard=r):
                self.model.backward(dl)
            losses.append(loss)
            per_rank_grads.append(self._kfac_flat_grads())
            per_rank_other.append(self._other_flat_grad())
            per_rank_factors.append(
                [self.kfac.local_factors(i) for i in range(len(self.kfac.layers))]
            )
        if self.cluster.is_timing:
            # Timing track: the single representative shard stands in for
            # every rank (factors are shared read-only; copy=False).
            cl = self.cluster
            return (
                losses,
                cl.replicate(per_rank_grads[0]),
                cl.replicate(per_rank_other[0]),
                cl.replicate(per_rank_factors[0], copy=False),
            )
        return losses, per_rank_grads, per_rank_other, per_rank_factors

    def _step(self, global_idx: np.ndarray, tracer) -> float:
        failures = self.cluster.begin_iteration(self.t)
        if failures:
            self._recover_from_failures(failures, tracer)
        guard = self.guard
        if guard is not None:
            guard.begin_step(self.t)
        world = self.cluster.world_size
        shards = self._trimmed_shards(global_idx)
        losses, per_rank_grads, per_rank_other, per_rank_factors = self._local_shard_pass(
            shards, tracer
        )
        if self.runtime is not None:
            return self._finish_step_runtime(
                losses, per_rank_grads, per_rank_other, per_rank_factors, shards, world, tracer
            )

        # Step: SGD-gradient allreduce (counted under "others" in Fig. 1).
        with tracer.span("grad_allreduce", "comm"):
            reduced = self.cluster.allreduce(
                per_rank_grads, average=True, category="grad_allreduce"
            )
            self._set_kfac_flat_grads(self._guard_gradient(self._sanitize(reduced[0])))
            if per_rank_other[0].size:
                other = self.cluster.allreduce(
                    per_rank_other, average=True, category="grad_allreduce"
                )
                self._set_other_flat_grad(self._sanitize(other[0]))

        # Step 2 of Fig. 2: factor allreduce, then running-average fold.
        # With a factor compressor, each rank's local contribution travels
        # compressed; SR's unbiasedness makes per-rank errors average out
        # in the sum (no feedback: factors are re-derived every iteration).
        with tracer.span("factor_allreduce", "factor", n_layers=len(self.kfac.layers)):
            self._factor_allreduce(per_rank_factors, world)

        # Step 3: owner-rank eigendecomposition on the refresh schedule.
        refresh = self.t % self.kfac.inv_update_freq == 0
        with tracer.span("eigendecomposition", "inverse", refresh=refresh):
            for i in range(len(self.kfac.layers)):
                if refresh or not self.kfac.state[i].ready:
                    if guard is not None:
                        guard.safe_eigen(self.kfac, i)
                    else:
                        self.kfac.compute_eigen(i)

        # Steps 4-5: owners precondition, compress, and eagerly distribute
        # each layer's result (per-layer broadcast from the owner — the
        # KAISA communication pattern).  The guard's circuit breaker can
        # force the lossless path for the whole step.
        compressor = self.compressor if guard is None else guard.active(self.compressor)
        autotune = self.autotune
        if autotune is not None:
            compressor = autotune.active_compressor(compressor)
        wire = 0.0
        original = 0.0
        layer_wire: list[tuple[int, float, float]] = []
        precond: dict[int, np.ndarray] = {}
        for i in range(len(self.kfac.layers)):
            with tracer.span("precondition", "precondition", layer=i):
                pg = self.kfac.precondition(i)
            original += pg.nbytes
            owner_pg = pg
            comp_i = (
                compressor
                if autotune is None
                else autotune.layer_compressor(i, pg.nbytes, compressor)
            )
            if comp_i is not None and self._channel is not None:
                pg, payload_bytes = self._reliable_allgather(pg, i, tracer)
            elif comp_i is not None:
                ct = comp_i.compress(pg)
                payload_bytes = ct.nbytes
                with tracer.span("allgather", "comm", layer=i, nbytes=payload_bytes):
                    received = self.cluster.broadcast(
                        ct, root=self.owners[i], nbytes=payload_bytes, category="kfac_allgather"
                    )[0]
                pg = self._guard_decode(received, owner_pg, comp_i, i)
            else:
                payload_bytes = pg.nbytes
                with tracer.span("allgather", "comm", layer=i, nbytes=payload_bytes):
                    pg = self.cluster.broadcast(
                        pg, root=self.owners[i], nbytes=payload_bytes, category="kfac_allgather"
                    )[0]
                if guard is not None:
                    pg = guard.scan(pg, what="kfac_allgather").reshape(owner_pg.shape)
            wire += payload_bytes
            layer_wire.append((i, payload_bytes, owner_pg.nbytes))
            precond[i] = pg
        return self._apply_and_record(losses, precond, wire, original, tracer, layer_wire)

    # -- guard hooks -----------------------------------------------------------

    def _guard_gradient(self, flat: np.ndarray) -> np.ndarray:
        """Scan the reduced gradient and capture its norm for health checks."""
        if self.guard is None:
            return flat
        flat = self.guard.scan(flat, what="grad_allreduce")
        self._guard_grad_norm = float(np.linalg.norm(flat))
        return flat

    def _guard_decode(self, received, owner_pg: np.ndarray, compressor, layer: int):
        """Decompress a received payload under the guard's sentinels.

        Without a guard this is a plain ``decompress``.  With one, a
        decode blow-up becomes a ``decode_failure`` verdict and the
        layer's update is dropped (zeros); the decoded tensor is scanned
        and checked against the active error-bound contract using the
        owner's original — no re-compression, so no RNG is consumed.
        """
        if self.guard is None:
            return compressor.decompress(received)
        decoded = self.guard.safe_decompress(compressor, received, layer=layer)
        if decoded is None:
            return np.zeros_like(owner_pg)
        decoded = self.guard.scan(decoded, what="kfac_allgather")
        self.guard.check_contract(owner_pg, decoded, compressor, layer=layer)
        return decoded.reshape(owner_pg.shape)

    def _apply_and_record(
        self,
        losses: list[float],
        precond: dict[int, np.ndarray],
        wire: float,
        original: float,
        tracer,
        layer_wire: list[tuple[int, float, float]] | None = None,
    ) -> float:
        """Shared step tail: apply the update, record history and metrics."""
        self.bytes_on_wire.append(wire)
        self.bytes_original.append(original)
        if original > 0:
            self.history.compression_ratios.append(original / max(wire, 1.0))

        # Update step (identical on every rank).
        if self.lr_schedule is not None:
            self.kfac.lr = self.lr_schedule.lr_at(self.t)
        with tracer.span("apply_update", "update"):
            self.kfac.apply(precond)
        if isinstance(self.compressor, AdaptiveCompso):
            self.compressor.step()
        mean_loss = float(np.mean(losses))
        self.history.losses.append(mean_loss)
        self.history.lrs.append(self.kfac.lr)
        if self.autotune is not None:
            # Decide *before* the ledger folds the step so the decision
            # lands in the step record that produced it; a retune takes
            # effect from the next iteration's compression.
            sample = None
            if self.autotune.wants_sample and precond:
                sample = precond[min(precond)]
            self.autotune.end_step(
                step=self.t,
                wire_bytes=wire,
                dense_bytes=original,
                n_messages=len(layer_wire) if layer_wire else len(precond),
                sample=sample,
            )
        m = get_metrics()
        if m.enabled:
            m.gauge("train.loss").set(mean_loss)
            m.gauge("train.lr").set(self.kfac.lr)
            m.counter("train.steps").inc()
            if original > 0:
                m.histogram("train.step_compression_ratio").observe(original / max(wire, 1.0))
            m.record_step(self.t, sim_time=self.cluster.time)
        if self.xray is not None:
            # Analyse the step's span window before the ledger folds the
            # step, so the attribution record lands where it belongs.
            self.xray.end_step(self.t)
        if self.obsv is not None:
            self.obsv.record_step(
                self.t,
                loss=mean_loss,
                lr=self.kfac.lr,
                wire_bytes=wire,
                dense_bytes=original,
                layers=layer_wire,
            )
        self.t += 1
        self.kfac.t = self.t
        if self.guard is not None:
            # Close the guarded iteration *after* the step counter moved:
            # a rollback remediation restores the checkpoint's counter, so
            # the next iteration resumes the rolled-back trajectory.
            self.guard.check_ef(self.compressor)
            self.guard.end_step(loss=mean_loss, grad_norm=self._guard_grad_norm)
        return mean_loss

    # -- runtime (overlapped) execution path -----------------------------------

    def _finish_step_runtime(
        self,
        losses: list[float],
        per_rank_grads: list[np.ndarray],
        per_rank_other: list[np.ndarray],
        per_rank_factors: list[list[tuple[np.ndarray, np.ndarray]]],
        shards: list[np.ndarray],
        world: int,
        tracer,
    ) -> float:
        """Scheduled compute–communication overlap via the StreamRuntime.

        Gradient buckets are issued during (modelled) backward, factor
        allreduces are coalesced and issued nonblocking, and each layer's
        preconditioned-gradient broadcast travels while the owner
        preconditions the next layer.  Data-plane order matches the
        blocking path exactly (same per-layer compression order, same
        reduction math), so the numerics are bit-identical.
        """
        from repro.runtime.bucketing import Bucketer, split_bounds

        rt = self.runtime
        cm = rt.compute
        guard = self.guard
        samples = len(shards[0])
        n_params = sum(p.size for p in self.model.parameters())
        if cm is not None:
            self.cluster.advance_all(cm.forward_seconds(n_params, samples), "forward")

        # Gradient allreduce in byte buckets issued during backward.
        bounds = split_bounds(per_rank_grads[0], rt.bucket_bytes)
        bwd = cm.backward_seconds(n_params, samples) if cm is not None else 0.0
        grad_handles = []
        other_handle = None
        with tracer.span("grad_allreduce", "comm", n_buckets=len(bounds)):
            for lo, hi in bounds:
                if bwd:
                    self.cluster.advance_all(bwd / len(bounds), "backward")
                grad_handles.append(
                    rt.iallreduce(
                        map_payloads(per_rank_grads, lambda g: g[lo:hi]),
                        average=True,
                        category="grad_allreduce",
                    )
                )
            if per_rank_other[0].size:
                other_handle = rt.iallreduce(
                    per_rank_other, average=True, category="grad_allreduce"
                )

        # Factor allreduce: per-layer payloads coalesced into byte-
        # threshold buckets, all buckets in flight concurrently.
        with tracer.span("factor_allreduce", "factor", n_layers=len(self.kfac.layers)):
            bucketer = Bucketer(rt, category="kfac_allreduce", average=True)
            for i in range(len(self.kfac.layers)):
                a_flat, wire_bytes = self._factor_payload(i, per_rank_factors, world)
                bucketer.add(i, a_flat, wire_nbytes=wire_bytes)
            reduced_factors = bucketer.wait()

        with tracer.span("grad_wait", "comm"):
            reduced = np.concatenate([h.wait()[0] for h in grad_handles])
            self._set_kfac_flat_grads(self._guard_gradient(self._sanitize(reduced)))
            if other_handle is not None:
                self._set_other_flat_grad(self._sanitize(other_handle.wait()[0]))
        for i in range(len(self.kfac.layers)):
            self._fold_factor(i, reduced_factors[i], per_rank_factors)

        refresh = self.t % self.kfac.inv_update_freq == 0
        with tracer.span("eigendecomposition", "inverse", refresh=refresh):
            for i in range(len(self.kfac.layers)):
                if refresh or not self.kfac.state[i].ready:
                    if guard is not None:
                        guard.safe_eigen(self.kfac, i)
                    else:
                        self.kfac.compute_eigen(i)
                    if cm is not None:
                        in_f, out_f = self._layer_dims(i)
                        self.cluster.advance_rank(
                            self.owners[i],
                            cm.eig_seconds(in_f) + cm.eig_seconds(out_f),
                            "kfac_compute",
                        )

        # Steps 4-5 overlapped: layer i's broadcast is in flight while the
        # owner of layer i+1 preconditions (KAISA's cross-layer overlap,
        # scheduled instead of assumed).
        compressor = self.compressor if guard is None else guard.active(self.compressor)
        autotune = self.autotune
        if autotune is not None:
            compressor = autotune.active_compressor(compressor)
        wire = 0.0
        original = 0.0
        layer_wire: list[tuple[int, float, float]] = []
        precond: dict[int, np.ndarray] = {}
        originals: dict[int, np.ndarray] = {}
        bcast_handles: dict[int, tuple] = {}
        for i in range(len(self.kfac.layers)):
            with tracer.span("precondition", "precondition", layer=i):
                pg = self.kfac.precondition(i)
            if cm is not None:
                self.cluster.advance_rank(
                    self.owners[i],
                    cm.precondition_seconds(*self._layer_dims(i)),
                    "kfac_compute",
                )
            original += pg.nbytes
            originals[i] = pg
            comp_i = (
                compressor
                if autotune is None
                else autotune.layer_compressor(i, pg.nbytes, compressor)
            )
            if comp_i is not None and self._channel is not None:
                # The checksum/retry protocol is barrier-synchronous even
                # under the runtime: retries must settle before the next
                # transfer can be priced, so this transfer stays blocking.
                pg, payload_bytes = self._reliable_allgather(pg, i, tracer)
                precond[i] = pg
            elif comp_i is not None:
                ct = comp_i.compress(pg)
                payload_bytes = ct.nbytes
                with tracer.span("allgather", "comm", layer=i, nbytes=payload_bytes):
                    bcast_handles[i] = (
                        rt.ibroadcast(
                            ct,
                            root=self.owners[i],
                            nbytes=payload_bytes,
                            category="kfac_allgather",
                        ),
                        comp_i,
                    )
            else:
                payload_bytes = pg.nbytes
                with tracer.span("allgather", "comm", layer=i, nbytes=payload_bytes):
                    bcast_handles[i] = (
                        rt.ibroadcast(
                            pg,
                            root=self.owners[i],
                            nbytes=payload_bytes,
                            category="kfac_allgather",
                        ),
                        None,
                    )
            wire += payload_bytes
            layer_wire.append((i, payload_bytes, pg.nbytes))
        with tracer.span("allgather_wait", "comm"):
            for i, (handle, comp_i) in bcast_handles.items():
                got = handle.wait()[0]
                if comp_i is not None:
                    precond[i] = self._guard_decode(got, originals[i], comp_i, i)
                elif guard is not None:
                    precond[i] = guard.scan(got, what="kfac_allgather").reshape(
                        originals[i].shape
                    )
                else:
                    precond[i] = got
        rt.assert_quiesced()
        return self._apply_and_record(losses, precond, wire, original, tracer, layer_wire)

    def _factor_allreduce(
        self,
        per_rank_factors: list[list[tuple[np.ndarray, np.ndarray]]],
        world: int,
    ) -> None:
        for i in range(len(self.kfac.layers)):
            a_flat, wire_bytes = self._factor_payload(i, per_rank_factors, world)
            red = self.cluster.allreduce(
                a_flat, average=True, category="kfac_allreduce", nbytes=wire_bytes
            )[0]
            self._fold_factor(i, red, per_rank_factors)

    def _factor_payload(
        self,
        i: int,
        per_rank_factors: list[list[tuple[np.ndarray, np.ndarray]]],
        world: int,
    ) -> tuple[list[np.ndarray], float | None]:
        """Per-rank flattened factor payload for layer ``i``.

        With a factor compressor, each rank's local contribution travels
        compressed; SR's unbiasedness makes per-rank errors average out
        in the sum (no feedback: factors are re-derived every iteration).
        Shared by the blocking and the runtime paths so the compression
        RNG is consumed in the exact same order.
        """
        wire_bytes: float | None = None
        if self.cluster.is_timing:
            # Timing track: every rank's contribution is the representative
            # one, so compress it once — wire_bytes already matches the
            # convergence semantic (mean compressed bytes per rank).
            pair = per_rank_factors[0][i]
            if self.factor_compressor is not None:
                original = 0
                wire = 0
                decoded = []
                for mat in pair:
                    ct = self.factor_compressor.compress(mat.astype(np.float32))
                    original += mat.astype(np.float32).nbytes
                    wire += ct.nbytes
                    decoded.append(self.factor_compressor.decompress(ct).astype(np.float64))
                self.factor_ratios.append(original / max(wire, 1))
                wire_bytes = float(wire)
                pair = decoded
            flat = np.concatenate([pair[0].ravel(), pair[1].ravel()])
            return self.cluster.replicate(flat, copy=False), wire_bytes
        if self.factor_compressor is not None:
            original = 0
            wire = 0
            decoded = []
            for f in per_rank_factors:
                pair = []
                for mat in f[i]:
                    ct = self.factor_compressor.compress(mat.astype(np.float32))
                    original += mat.astype(np.float32).nbytes
                    wire += ct.nbytes
                    pair.append(self.factor_compressor.decompress(ct).astype(np.float64))
                decoded.append(pair)
            self.factor_ratios.append(original / max(wire, 1))
            wire_bytes = float(wire) / world
            a_flat = [np.concatenate([p[0].ravel(), p[1].ravel()]) for p in decoded]
        else:
            a_flat = [
                np.concatenate([f[i][0].ravel(), f[i][1].ravel()]) for f in per_rank_factors
            ]
        return a_flat, wire_bytes

    def _fold_factor(
        self,
        i: int,
        red: np.ndarray,
        per_rank_factors: list[list[tuple[np.ndarray, np.ndarray]]],
    ) -> None:
        da = per_rank_factors[0][i][0].shape[0]
        A = red[: da * da].reshape(da, da)
        G = red[da * da :].reshape(per_rank_factors[0][i][1].shape)
        self.kfac.accumulate_factors(i, A, G)

    # -- fault tolerance -------------------------------------------------------

    def _sanitize(self, flat: np.ndarray) -> np.ndarray:
        """Replace non-finite gradient entries after data-plane faults.

        Silent corruption of a raw allreduce payload can surface as
        NaN/Inf; zeroing the poisoned entries keeps the update bounded
        (graceful degradation) instead of destroying the parameters.
        Fault-free runs never pay for the scan.
        """
        if self.cluster.faults is None or np.isfinite(flat).all():
            return flat
        m = get_metrics()
        if m.enabled:
            m.counter("faults.recovered", kind="sanitized_gradient").inc()
        return np.nan_to_num(flat, nan=0.0, posinf=0.0, neginf=0.0)

    def _reliable_allgather(self, pg: np.ndarray, layer: int, tracer) -> tuple[np.ndarray, float]:
        """Checksummed compressed broadcast with retransmit + degradation.

        Returns the decoded gradient and the wire bytes actually spent
        (every retransmission and the checksum overhead included).  An
        unrecoverable transfer falls back to resending the raw tensor —
        the lossless path — and degrades the compressor for the next few
        iterations.
        """
        ct = self.compressor.compress(pg)
        with tracer.span("allgather", "comm", layer=layer, nbytes=ct.nbytes, reliable=True):
            sealed, report = self._channel.broadcast(
                ct, root=self.owners[layer], category="kfac_allgather"
            )
        wire = float(sealed.nbytes) * report.wire_bytes_factor
        if report.unrecoverable:
            root = self.owners[layer]
            with tracer.span("lossless_fallback", "comm", layer=layer, nbytes=pg.nbytes):
                # Take the root's own copy: the raw resend is the last line
                # of defence, and the owner's buffer is by construction
                # uncorrupted (faults hit receivers, never the sender).
                pg = self.cluster.broadcast(
                    pg, root=root, nbytes=pg.nbytes, category="kfac_allgather"
                )[root]
            wire += pg.nbytes
            m = get_metrics()
            if m.enabled:
                m.counter("faults.recovered", kind="lossless_fallback").inc()
            self._degrade_compressor()
            return pg, wire
        if report.detected:
            self._degrade_compressor()
        return self.compressor.decompress(sealed), wire

    def _degrade_compressor(self) -> None:
        degrade = getattr(self.compressor, "degrade", None)
        if degrade is None:
            return
        degrade()
        m = get_metrics()
        if m.enabled:
            m.counter("faults.recovered", kind="degrade").inc()

    def _recover_from_failures(self, failures: list[FailureEvent], tracer) -> None:
        """Elastic continuation after permanent rank loss.

        The world has already shrunk (``cluster.begin_iteration``); here
        the trainer repairs position-indexed state: restore from the
        latest checkpoint if the failure was unrecoverable, otherwise
        invalidate the dead ranks' eigendecompositions so the new owners
        rebuild them, then reassign layer ownership over the survivors.
        """
        m = get_metrics()
        with tracer.span("recover", "fault", n_failures=len(failures)):
            hard = [f for f in failures if not f.recoverable]
            if hard and self.checkpoint_store is not None and self.checkpoint_store.latest():
                self.restore_latest()
                if m.enabled:
                    m.counter("faults.recovered", kind="checkpoint_restore").inc()
            elif hard and self._last_checkpoint is not None:
                self.restore_state(self._last_checkpoint)
                if m.enabled:
                    m.counter("faults.recovered", kind="checkpoint_restore").inc()
            else:
                dead_positions = {f.index for f in failures}
                for i, owner in enumerate(self.owners):
                    if owner in dead_positions:
                        st = self.kfac.state[i]
                        st.QA = st.vA = st.QG = st.vG = None
                        if m.enabled:
                            m.counter("faults.recovered", kind="eigen_rebuild").inc()
            costs = [eig_cost(*self._layer_dims(i)) for i in range(len(self.kfac.layers))]
            self.owners = assign_layers(costs, self.cluster.world_size)
            if m.enabled:
                m.counter("faults.recovered", kind="rank_failure").inc(len(failures))

    # -- checkpointing ---------------------------------------------------------

    def save_state(self, path: str | Path | None = None) -> Path:
        """Atomic full-state checkpoint (model, K-FAC, compressor).

        With a :attr:`checkpoint_store` and no explicit ``path``, the
        checkpoint is committed as a sealed store generation instead of
        a bare file.
        """
        if path is None:
            if self.checkpoint_store is None:
                raise ValueError(
                    "save_state() needs a path when no checkpoint_store is configured"
                )
            gen = self.checkpoint_store.save(
                self.model,
                self.kfac,
                compressor=self.compressor,
                world_size=self.cluster.world_size,
                step=self.t,
            )
            self._last_checkpoint = self.checkpoint_store.root / gen.file
            return self._last_checkpoint
        path = Path(path)
        save_checkpoint(
            path,
            self.model,
            self.kfac,
            compressor=self.compressor,
            world_size=self.cluster.world_size,
            step=self.t,
        )
        self._last_checkpoint = path
        return path

    def restore_state(self, path: str | Path) -> None:
        """Restore a :meth:`save_state` checkpoint and resume its exact
        trajectory (momentum, eigen state, adaptive bounds, SR RNG)."""
        load_checkpoint(path, self.model, self.kfac, compressor=self.compressor)
        self.t = self.kfac.t
        self._last_checkpoint = Path(path)

    def restore_latest(self):
        """Restore the newest *verified* store generation (with fallback).

        Returns the restored :class:`~repro.store.Generation` — its
        ``step`` is where training resumes — or ``None`` when the store
        is empty.  A corrupt newest generation is quarantined and the
        next-older verified one restored instead
        (:meth:`CheckpointStore.load_latest`); only a store with *no*
        verified generation raises.
        """
        if self.checkpoint_store is None:
            raise ValueError("restore_latest() requires a checkpoint_store")
        gen = self.checkpoint_store.load_latest(
            self.model, self.kfac, compressor=self.compressor
        )
        if gen is None:
            return None
        self.t = self.kfac.t
        self._last_checkpoint = self.checkpoint_store.root / gen.file
        return gen

    def train(self, *, iterations: int, batch_size: int, eval_every: int = 0, seed: int = 0):
        if self.obsv is not None:
            self.obsv.update_manifest(seed=seed, iterations=iterations, batch_size=batch_size)
        for t, idx in enumerate(
            batch_indices(self.task.n, batch_size, iterations=iterations, seed=seed)
        ):
            self.step(idx)
            if eval_every and (t + 1) % eval_every == 0:
                self.history.metrics.append((t + 1, self.task.evaluate(self.model)))
            if self.checkpoint_every and (t + 1) % self.checkpoint_every == 0:
                if self.checkpoint_store is not None:
                    self.save_state()
                elif self.checkpoint_dir is not None:
                    self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
                    self.save_state(self.checkpoint_dir / "latest.npz")
        if self.obsv is not None:
            store = self.checkpoint_store
            if store is not None and store.abnormal_events():
                # Only damage perturbs the artifact: a healthy store's
                # ledger stays byte-identical to a store-less run.
                self.obsv.update_manifest(store=store.summary())
            self.obsv.close(final_metric=self.history.final_metric())
        return self.history

    def mean_compression_ratio(self) -> float:
        return self.history.mean_cr()
