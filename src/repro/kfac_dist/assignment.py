"""Layer-to-rank work assignment for distributed K-FAC.

Eigendecompositions dominate K-FAC compute, scaling with the cube of the
factor dimensions, so layers are distributed with greedy longest-
processing-time bin packing on their estimated eigendecomposition cost —
the "evenly split across multiple GPUs" of paper section 2.2.
"""

from __future__ import annotations

import numpy as np

__all__ = ["assign_layers", "eig_cost"]


def eig_cost(in_f: int, out_f: int) -> float:
    """Relative eigendecomposition cost for one layer's factor pair."""
    return float(in_f) ** 3 + float(out_f) ** 3


def assign_layers(costs: list[float], world_size: int) -> list[int]:
    """Greedy LPT assignment; returns owner rank per layer."""
    if world_size < 1:
        raise ValueError("world_size must be >= 1")
    owners = [0] * len(costs)
    loads = np.zeros(world_size)
    for idx in sorted(range(len(costs)), key=lambda i: -costs[i]):
        r = int(loads.argmin())
        owners[idx] = r
        loads[r] += costs[idx]
    return owners
