"""Analytic iteration-time model for distributed K-FAC at real scale.

Fig. 1 (time breakdown), Fig. 7 (communication speedup) and Fig. 9
(end-to-end gain) evaluate the paper's real models on 64-256 GPUs; this
module models one KAISA training iteration from a layer-shape catalog,
the platform's network, and the A100 device model:

* **Forward+Backward** — 3x forward FLOPs at an effective training rate
  (mixed-precision A100, ~32 TFLOP/s);
* **KFAC Allreduce** — factor allreduce (symmetric, so half the factor
  elements travel), amortised over the factor-update interval;
* **KFAC Computations** — local factor statistics, the owner's
  eigendecompositions (amortised over the inverse-update interval) and
  preconditioning matmuls;
* **KFAC Allgather** — the preconditioned-gradient exchange: the payload
  COMPSO compresses.  With compression, the payload shrinks by the
  measured ratio and per-rank (de)compression overhead from the gpusim
  kernel pipeline is added;
* **Others** — the non-overlapped residue of the DDP gradient allreduce
  (bucketed allreduce overlaps with backward) plus fixed per-iteration
  overhead (data loading, optimizer step).

Constants are calibrated so the no-compression breakdown reproduces
Fig. 1's 16-node columns; everything else (scaling with nodes, platforms,
compression) follows from the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.layer_aggregation import LayerAggregator
from repro.distributed.collectives import allgather_time, allreduce_time
from repro.distributed.network import Platform
from repro.gpusim.device import A100, DeviceModel
from repro.gpusim.kernels import PIPELINES, KernelPipeline
from repro.kfac_dist.assignment import assign_layers, eig_cost
from repro.models.catalogs import LayerShape

__all__ = ["CompressionSpec", "IterationBreakdown", "KfacIterationModel", "MODEL_TIMING_PROFILES"]


@dataclass(frozen=True)
class CompressionSpec:
    """What the timing model needs to know about a compressor."""

    #: Achieved compression ratio on the allgather payload.
    ratio: float
    #: gpusim kernel pipeline used for overhead modelling.
    pipeline: KernelPipeline
    #: Layer-aggregation factor (COMPSO's m).
    aggregation: int = 1

    @staticmethod
    def compso(ratio: float, aggregation: int = 4) -> "CompressionSpec":
        return CompressionSpec(ratio, PIPELINES["compso-cuda"], aggregation)


@dataclass
class IterationBreakdown:
    """Per-iteration seconds by Fig. 1 category."""

    fwd_bwd: float
    kfac_compute: float
    kfac_allreduce: float
    kfac_allgather: float
    others: float
    #: (De)compression overhead, kept separate so Fig. 7's "communication
    #: time excludes compression overhead" comparison is possible.
    compression: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.fwd_bwd
            + self.kfac_compute
            + self.kfac_allreduce
            + self.kfac_allgather
            + self.others
            + self.compression
        )

    def fractions(self) -> dict[str, float]:
        t = self.total
        return {
            "kfac_allgather": self.kfac_allgather / t,
            "kfac_allreduce": self.kfac_allreduce / t,
            "kfac_compute": self.kfac_compute / t,
            "fwd_bwd": self.fwd_bwd / t,
            "others": (self.others + self.compression) / t,
        }

    def overlapped_total(
        self,
        *,
        measured_overlap: float | None = None,
        assumed_overlap: float | None = None,
    ) -> float:
        """Iteration time when part of the K-FAC communication hides under
        computation (KAISA's cross-layer overlap, section 2.2).

        Exactly one of the two keywords must be given:

        ``measured_overlap``
            The scheduler-measured hidden fraction of issued comm time,
            i.e. :meth:`repro.runtime.StreamRuntime.hidden_fraction`.
            ``comm * (1 - measured_overlap)`` stays exposed — the
            fraction is a property of the comm itself, so no capacity
            cap applies.

        ``assumed_overlap``
            The legacy hand-waved constant (previously the positional
            ``overlap_fraction``): up to ``assumed_overlap * (fwd_bwd +
            kfac_compute)`` of the comm time disappears behind compute.
            Kept for reproducing old numbers; prefer running a
            :class:`~repro.runtime.StreamRuntime` and passing what it
            measured.
        """
        if (measured_overlap is None) == (assumed_overlap is None):
            raise ValueError(
                "pass exactly one of measured_overlap= (from "
                "StreamRuntime.hidden_fraction()) or assumed_overlap= "
                "(the legacy constant)"
            )
        comm = self.kfac_allgather + self.kfac_allreduce
        if measured_overlap is not None:
            if not 0.0 <= measured_overlap <= 1.0:
                raise ValueError(f"measured_overlap must be in [0, 1], got {measured_overlap}")
            exposed_comm = comm * (1.0 - measured_overlap)
        else:
            if not 0.0 <= assumed_overlap <= 1.0:
                raise ValueError(f"assumed_overlap must be in [0, 1], got {assumed_overlap}")
            hideable = assumed_overlap * (self.fwd_bwd + self.kfac_compute)
            exposed_comm = max(comm - hideable, 0.0)
        return self.fwd_bwd + self.kfac_compute + exposed_comm + self.others + self.compression


@dataclass
class TimingProfile:
    """Per-model calibration constants."""

    per_gpu_batch: int
    #: Effective training throughput per GPU (FLOP/s, mixed precision).
    train_flops: float = 32e12
    #: Factor allreduce interval (iterations).
    factor_update_freq: int = 10
    #: Eigendecomposition interval (iterations).
    inv_update_freq: int = 100
    #: *Assumed* fraction of the DDP gradient allreduce hidden under
    #: backward.  A :class:`repro.runtime.StreamRuntime` run measures this
    #: instead — pass its value to :meth:`KfacIterationModel.others_time`.
    grad_overlap: float = 0.8
    #: Fixed per-iteration overhead as a fraction of fwd+bwd time.
    fixed_overhead_frac: float = 0.15
    #: Samples per factor-statistics matmul (K-FAC implementations cap this).
    stat_samples: int = 256
    #: Factors larger than this use KAISA's implicit inversion instead of
    #: eigendecomposition (memory/time optimisation, paper section 2.2).
    eig_dim_cap: int = 8192
    #: Per-message software overhead of the eager per-layer exchange
    #: (collective launch, size negotiation, stream sync).  This is the
    #: term layer aggregation amortises: the baseline pays it per layer,
    #: COMPSO per aggregate of m layers.
    message_overhead: float = 120e-6


#: Calibrated against Fig. 1's 16-node (64 GPU) columns: grid-searched so
#: the modelled no-compression breakdown matches the paper's fractions to
#: within a few percent per category.
MODEL_TIMING_PROFILES: dict[str, TimingProfile] = {
    "resnet50": TimingProfile(
        per_gpu_batch=48,
        train_flops=40e12,
        factor_update_freq=15,
        inv_update_freq=50,
        stat_samples=512,
        fixed_overhead_frac=0.30,
        grad_overlap=0.9,
    ),
    "maskrcnn": TimingProfile(
        per_gpu_batch=3,
        train_flops=20e12,
        factor_update_freq=30,
        inv_update_freq=60,
        stat_samples=256,
        fixed_overhead_frac=0.20,
        grad_overlap=0.85,
    ),
    "bert-large": TimingProfile(
        per_gpu_batch=16,
        train_flops=56e12,
        factor_update_freq=10,
        inv_update_freq=10,
        stat_samples=2048,
        fixed_overhead_frac=0.12,
        grad_overlap=0.85,
    ),
    "gpt-neo-125m": TimingProfile(
        per_gpu_batch=2,
        train_flops=35e12,
        factor_update_freq=12,
        inv_update_freq=10,
        stat_samples=2048,
        fixed_overhead_frac=0.15,
        grad_overlap=0.9,
    ),
}


class KfacIterationModel:
    """Models one distributed K-FAC iteration over a layer catalog."""

    def __init__(
        self,
        catalog: list[LayerShape],
        platform: Platform,
        n_nodes: int,
        *,
        profile: TimingProfile,
        device: DeviceModel = A100,
    ):
        self.catalog = catalog
        self.platform = platform
        self.n_nodes = n_nodes
        self.profile = profile
        self.device = device
        self.world = platform.world_size(n_nodes)
        self.owners = assign_layers(
            [eig_cost(l.in_f, l.out_f) for l in catalog], self.world
        )
        self.grad_bytes = float(sum(l.grad_bytes for l in catalog))
        self.factor_bytes = float(sum(l.factor_bytes for l in catalog))

    # -- component models ---------------------------------------------------------

    def fwd_bwd_time(self) -> float:
        flops = 3.0 * sum(l.fwd_flops for l in self.catalog) * self.profile.per_gpu_batch
        return flops / self.profile.train_flops

    def kfac_compute_time(self) -> float:
        p = self.profile
        dev = self.device
        # Local factor statistics: every rank, every layer, capped samples.
        stats = sum(
            2.0 * (l.in_f**2 + l.out_f**2) * p.stat_samples / (0.6 * dev.tensor_flops)
            for l in self.catalog
        )
        # Owner work, balanced by LPT: take the most loaded rank.
        per_rank_eig = np.zeros(self.world)
        per_rank_pre = np.zeros(self.world)

        def solve_time(dim: int) -> float:
            if dim > p.eig_dim_cap:
                return dev.inverse_time(dim)
            return dev.eig_time(dim)

        for l, owner in zip(self.catalog, self.owners):
            per_rank_eig[owner] += solve_time(l.in_f) + solve_time(l.out_f)
            per_rank_pre[owner] += 2.0 * (
                l.in_f**2 * l.out_f + l.out_f**2 * l.in_f
            ) / (0.6 * dev.tensor_flops)
        eig = float(per_rank_eig.max()) / p.inv_update_freq
        pre = float(per_rank_pre.max())
        return stats + eig + pre

    def factor_allreduce_time(self, factor_ratio: float = 1.0) -> float:
        """Factor allreduce; factors are symmetric, so the triangle travels.

        ``factor_ratio`` > 1 models factor compression (paper section 7
        future work; see :mod:`repro.core.factor_compression`).
        """
        net = self.platform.network
        t = allreduce_time(
            net,
            self.world,
            self.factor_bytes / 2 / factor_ratio,
            self.platform.gpus_per_node,
        )
        return t / self.profile.factor_update_freq

    def allgather_time_for(self, payload_bytes: float, n_messages: int | None = None) -> float:
        """Preconditioned-gradient exchange for a total payload.

        ``n_messages`` is the number of eager per-layer (or per-aggregate)
        exchanges; each pays the profile's software overhead.  Defaults to
        one message per layer (the KAISA baseline).
        """
        net = self.platform.network
        if n_messages is None:
            n_messages = len(self.catalog)
        t = allgather_time(
            net, self.world, payload_bytes / self.world, self.platform.gpus_per_node
        )
        return t + n_messages * self.profile.message_overhead

    def compression_overhead(self, spec: CompressionSpec) -> float:
        """Per-rank compress-own-share + decompress-everything time."""
        agg = LayerAggregator(spec.aggregation)
        own_sizes = [
            l.grad_elems for l, o in zip(self.catalog, self.owners) if o == 0
        ] or [self.catalog[0].grad_elems]
        comp = sum(
            spec.pipeline.compress_time(b, self.device) for b in agg.group_bytes(own_sizes)
        )
        all_sizes = [l.grad_elems for l in self.catalog]
        decomp = sum(
            spec.pipeline.decompress_time(b, self.device) for b in agg.group_bytes(all_sizes)
        )
        return comp + decomp

    def others_time(self, measured_grad_overlap: float | None = None) -> float:
        """DDP gradient-allreduce residue plus fixed overhead.

        ``measured_grad_overlap`` substitutes a scheduler-measured hidden
        fraction (``StreamRuntime.overlap_stats()['grad_allreduce']``)
        for the profile's assumed ``grad_overlap`` constant.
        """
        net = self.platform.network
        grad_ar = allreduce_time(net, self.world, self.grad_bytes, self.platform.gpus_per_node)
        overlap = (
            measured_grad_overlap
            if measured_grad_overlap is not None
            else self.profile.grad_overlap
        )
        residue = (1.0 - overlap) * grad_ar
        return residue + self.profile.fixed_overhead_frac * self.fwd_bwd_time()

    # -- composed ------------------------------------------------------------------

    def breakdown(
        self,
        compression: CompressionSpec | None = None,
        *,
        factor_ratio: float = 1.0,
    ) -> IterationBreakdown:
        if compression is None:
            allgather = self.allgather_time_for(self.grad_bytes)
            comp_overhead = 0.0
        else:
            n_groups = -(-len(self.catalog) // compression.aggregation)
            allgather = self.allgather_time_for(
                self.grad_bytes / compression.ratio, n_messages=n_groups
            )
            comp_overhead = self.compression_overhead(compression)
        if factor_ratio > 1.0 and compression is not None:
            # Factor (de)compression overhead, amortised like the allreduce.
            comp_overhead += (
                compression.pipeline.compress_time(self.factor_bytes / 2 / self.world, self.device)
                + compression.pipeline.decompress_time(self.factor_bytes / 2, self.device)
            ) / self.profile.factor_update_freq
        return IterationBreakdown(
            fwd_bwd=self.fwd_bwd_time(),
            kfac_compute=self.kfac_compute_time(),
            kfac_allreduce=self.factor_allreduce_time(factor_ratio),
            kfac_allgather=allgather,
            others=self.others_time(),
            compression=comp_overhead,
        )

    def record_trace(
        self,
        tracer,
        compression: CompressionSpec | None = None,
        *,
        factor_ratio: float = 1.0,
        rank: int = 0,
    ) -> IterationBreakdown:
        """Compute :meth:`breakdown` and emit it as sim-track spans.

        One span per Fig. 1 category, laid out sequentially on ``rank``'s
        timeline starting at the tracer's cursor.  Downstream consumers
        (the Fig. 1 bench, `repro trace` summaries) read the numbers back
        from the tracer, so the figure and the trace share one source.
        """
        from repro.telemetry import SIM_TRACK

        bd = self.breakdown(compression, factor_ratio=factor_ratio)
        parts = [
            ("fwd_bwd", "fwd_bwd", bd.fwd_bwd),
            ("kfac_compute", "kfac_compute", bd.kfac_compute),
            ("kfac_allreduce", "kfac_allreduce", bd.kfac_allreduce),
            ("kfac_allgather", "kfac_allgather", bd.kfac_allgather),
            ("others", "others", bd.others),
        ]
        if bd.compression > 0:
            parts.append(("compression", "compression", bd.compression))
        start = tracer.cursor(SIM_TRACK, rank)
        for name, category, seconds in parts:
            tracer.add_span(
                name,
                category,
                seconds,
                start=start,
                track=SIM_TRACK,
                rank=rank,
                nodes=self.n_nodes,
                world=self.world,
            )
            start += seconds
        return bd

    def comm_speedup(self, compression: CompressionSpec, *, include_overhead: bool = False) -> float:
        """Allgather speedup from compression (Fig. 7 excludes overhead)."""
        base = self.allgather_time_for(self.grad_bytes)
        n_groups = -(-len(self.catalog) // compression.aggregation)
        comp = self.allgather_time_for(
            self.grad_bytes / compression.ratio, n_messages=n_groups
        )
        if include_overhead:
            comp += self.compression_overhead(compression)
        return base / comp

    def end_to_end_speedup(
        self, compression: CompressionSpec, *, factor_ratio: float = 1.0
    ) -> float:
        """Iteration-time ratio: no compression vs compressed (Fig. 9)."""
        return (
            self.breakdown(None).total
            / self.breakdown(compression, factor_ratio=factor_ratio).total
        )
