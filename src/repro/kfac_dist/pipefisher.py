"""PipeFisher-style pipeline-parallel K-FAC model (paper section 6).

PipeFisher (Osawa et al., MLSys'23) splits the model into pipeline
stages and fills the 1F1B pipeline *bubbles* with K-FAC work, targeting
memory-limited GPUs (16 GB P100/V100) that cannot hold a full replica.
The paper argues this is obsolete on 40-80 GB GPUs: data parallelism
fits, avoids pipeline bubbles and stage-boundary activation traffic, and
composes with COMPSO.

This module models one PipeFisher training iteration so the argument is
quantitative:

* stage compute: the global batch is split into ``microbatches``; a 1F1B
  schedule has bubble fraction ``(S-1)/(M+S-1)``;
* K-FAC work (factor statistics, eigendecompositions, preconditioning)
  runs inside the bubbles; only the overflow beyond bubble capacity adds
  to the critical path;
* stage-boundary traffic: activations and their gradients cross each
  stage cut twice per microbatch.

Compare against :class:`KfacIterationModel` (data-parallel KAISA) at the
same GPU count, and against :mod:`repro.kfac_dist.memory` for the per-GPU
footprint (a pipeline stage holds ~1/S of the model and activations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.network import Platform
from repro.gpusim.device import A100, DeviceModel
from repro.kfac_dist.timing import TimingProfile
from repro.models.catalogs import LayerShape

__all__ = ["PipeFisherModel", "PipelineBreakdown"]


@dataclass
class PipelineBreakdown:
    """One pipeline-parallel iteration, seconds by component."""

    stage_compute: float  # useful fwd+bwd work on the critical stage
    bubble: float  # pipeline fill/drain idle on the critical path
    kfac_exposed: float  # K-FAC work that did not fit in the bubbles
    kfac_hidden: float  # K-FAC work absorbed by bubbles (informational)
    p2p: float  # stage-boundary activation traffic

    @property
    def total(self) -> float:
        return self.stage_compute + self.bubble + self.kfac_exposed + self.p2p


class PipeFisherModel:
    """Analytic 1F1B pipeline with bubble-filled K-FAC."""

    def __init__(
        self,
        catalog: list[LayerShape],
        platform: Platform,
        *,
        stages: int = 4,
        microbatches: int = 8,
        profile: TimingProfile,
        device: DeviceModel = A100,
    ):
        if stages < 2:
            raise ValueError("a pipeline needs at least 2 stages")
        if microbatches < 1:
            raise ValueError("microbatches must be >= 1")
        self.catalog = catalog
        self.platform = platform
        self.stages = stages
        self.microbatches = microbatches
        self.profile = profile
        self.device = device
        # Split layers into contiguous stages balanced by forward FLOPs.
        self.stage_layers = self._split_by_flops()

    def _split_by_flops(self) -> list[list[LayerShape]]:
        total = sum(l.fwd_flops for l in self.catalog)
        target = total / self.stages
        out: list[list[LayerShape]] = [[] for _ in range(self.stages)]
        acc = 0.0
        si = 0
        for l in self.catalog:
            if acc >= target * (si + 1) and si < self.stages - 1:
                si += 1
            out[si].append(l)
            acc += l.fwd_flops
        return out

    # -- components --------------------------------------------------------------

    def _stage_fwd_bwd(self, layers: list[LayerShape]) -> float:
        """Fwd+bwd seconds for one stage over the replica's batch.

        For an equal-GPU comparison with data parallelism, the S-stage
        pipeline must process S times the per-GPU batch (the samples the
        S data-parallel replicas would have shared).
        """
        batch = self.profile.per_gpu_batch * self.stages
        flops = 3.0 * sum(l.fwd_flops for l in layers) * batch
        return flops / self.profile.train_flops

    def _stage_kfac_work(self, layers: list[LayerShape]) -> float:
        """Per-iteration K-FAC seconds a stage must fit into its bubbles."""
        dev = self.device
        p = self.profile
        stats = sum(
            2.0 * (l.in_f**2 + l.out_f**2) * p.stat_samples / (0.6 * dev.tensor_flops)
            for l in layers
        )
        eig = sum(dev.eig_time(min(l.in_f, p.eig_dim_cap)) + dev.eig_time(min(l.out_f, p.eig_dim_cap)) for l in layers)
        pre = sum(
            2.0 * (l.in_f**2 * l.out_f + l.out_f**2 * l.in_f) / (0.6 * dev.tensor_flops)
            for l in layers
        )
        return stats + eig / p.inv_update_freq + pre

    def _boundary_bytes(self) -> float:
        """Activation bytes crossing one stage cut, per microbatch."""
        # Use the last layer of each stage's output size as the cut width.
        sizes = []
        for layers in self.stage_layers[:-1]:
            last = layers[-1]
            out_elems = last.fwd_flops / (2.0 * max(last.in_f - 1, 1))
            sizes.append(out_elems * 4.0)
        replica_batch = self.profile.per_gpu_batch * self.stages
        micro = max(replica_batch // self.microbatches, 1)
        return float(np.mean(sizes)) * micro if sizes else 0.0

    # -- composed -------------------------------------------------------------------

    def breakdown(self) -> PipelineBreakdown:
        s, m = self.stages, self.microbatches
        critical = max(self._stage_fwd_bwd(layers) for layers in self.stage_layers)
        bubble_fraction = (s - 1) / (m + s - 1)
        # 1F1B wall-clock = useful work / (1 - bubble fraction).
        pipeline_time = critical / (1.0 - bubble_fraction)
        bubble = pipeline_time - critical
        kfac = max(self._stage_kfac_work(layers) for layers in self.stage_layers)
        hidden = min(kfac, bubble)
        exposed = kfac - hidden
        # Stage-boundary traffic: fwd activation + bwd gradient per
        # microbatch per cut, over NVLink (stages co-located per node).
        net = self.platform.network
        per_cut = self._boundary_bytes()
        p2p = 2.0 * per_cut * m / net.intra_bw + 2.0 * m * net.intra_lat
        return PipelineBreakdown(
            stage_compute=critical,
            bubble=bubble,
            kfac_exposed=exposed,
            kfac_hidden=hidden,
            p2p=p2p,
        )

    def per_stage_memory_fraction(self) -> float:
        """Rough share of a full replica's weights held per stage."""
        params = [sum(l.grad_elems for l in layers) for layers in self.stage_layers]
        return max(params) / max(sum(params), 1)
