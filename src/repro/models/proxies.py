"""Trainable proxy models for the four paper workloads.

Convergence/accuracy experiments (Figs. 3, 5, 6; Table 1) need *relative*
accuracy comparisons between compressors, not ImageNet-scale absolute
numbers.  Each proxy is a small NumPy model of the same architectural
family trained with real K-FAC on a synthetic dataset, so it has the same
kind of per-layer gradient statistics and the same sensitivity ordering
(RN vs SR vs filtered errors) as the paper's workloads.
"""

from __future__ import annotations

import numpy as np

from repro.models.transformer import TransformerLM
from repro.nn.activations import ReLU
from repro.nn.container import Residual, Sequential
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.norm import BatchNorm2d
from repro.nn.pooling import GlobalAvgPool2d, MaxPool2d
from repro.util.seeding import spawn_rng

__all__ = ["resnet_proxy", "maskrcnn_proxy", "bert_proxy", "gpt_proxy", "DetectionProxy"]


def resnet_proxy(
    n_classes: int = 10, channels: int = 16, *, rng=0
) -> Sequential:
    """Small residual CNN classifier (ResNet-50 stand-in); input (N,3,16,16)."""
    rng = spawn_rng(rng)
    c = channels
    return Sequential(
        Conv2d(3, c, 3, padding=1, rng=spawn_rng(rng, 0)),
        BatchNorm2d(c),
        ReLU(),
        MaxPool2d(2),
        Residual(
            Sequential(
                Conv2d(c, c, 3, padding=1, rng=spawn_rng(rng, 1)),
                BatchNorm2d(c),
                ReLU(),
                Conv2d(c, c, 3, padding=1, rng=spawn_rng(rng, 2)),
                BatchNorm2d(c),
            )
        ),
        ReLU(),
        Conv2d(c, 2 * c, 3, padding=1, rng=spawn_rng(rng, 3)),
        BatchNorm2d(2 * c),
        ReLU(),
        MaxPool2d(2),
        GlobalAvgPool2d(),
        Linear(2 * c, n_classes, rng=spawn_rng(rng, 4)),
    )


class DetectionProxy(Module):
    """Mask R-CNN stand-in: shared CNN trunk + classification & box heads.

    ``forward`` returns the concatenation ``[class_logits | box_deltas]``
    so the Sequential-style single-tensor backward API holds; the
    detection loss in :mod:`repro.train.metrics` splits the two heads.
    """

    def __init__(self, n_classes: int = 8, n_boxes: int = 4, channels: int = 16, *, rng=0):
        super().__init__()
        rng = spawn_rng(rng)
        c = channels
        self.trunk = Sequential(
            Conv2d(3, c, 3, padding=1, rng=spawn_rng(rng, 0)),
            BatchNorm2d(c),
            ReLU(),
            MaxPool2d(2),
            Conv2d(c, 2 * c, 3, padding=1, rng=spawn_rng(rng, 1)),
            BatchNorm2d(2 * c),
            ReLU(),
            MaxPool2d(2),
            GlobalAvgPool2d(),
        )
        self.cls_head = Linear(2 * c, n_classes, rng=spawn_rng(rng, 2))
        self.box_head = Linear(2 * c, 4 * n_boxes, rng=spawn_rng(rng, 3))
        self.n_classes = n_classes
        self.n_boxes = n_boxes

    def forward(self, x: np.ndarray) -> np.ndarray:
        feat = self.trunk(x)
        self._feat = feat
        return np.concatenate([self.cls_head(feat), self.box_head(feat)], axis=1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g_cls = grad_out[:, : self.n_classes]
        g_box = grad_out[:, self.n_classes :]
        g_feat = self.cls_head.backward(g_cls) + self.box_head.backward(g_box)
        return self.trunk.backward(g_feat)


def maskrcnn_proxy(n_classes: int = 8, n_boxes: int = 4, *, rng=0) -> DetectionProxy:
    """Detection-style proxy with classification + box-regression heads."""
    return DetectionProxy(n_classes, n_boxes, rng=rng)


def bert_proxy(
    vocab: int = 64, dim: int = 32, n_layers: int = 2, max_seq: int = 32, *, rng=0
) -> TransformerLM:
    """Bidirectional (non-causal) transformer for masked-LM tasks."""
    return TransformerLM(
        vocab, dim=dim, heads=4, n_layers=n_layers, max_seq=max_seq, causal=False, rng=rng
    )


def gpt_proxy(
    vocab: int = 64, dim: int = 32, n_layers: int = 2, max_seq: int = 32, *, rng=0
) -> TransformerLM:
    """Causal transformer for next-token language modelling."""
    return TransformerLM(
        vocab, dim=dim, heads=4, n_layers=n_layers, max_seq=max_seq, causal=True, rng=rng
    )
