"""A configurable mini-ResNet (trainable, K-FAC-compatible).

A faithful scaled-down residual network — stem, stages of basic residual
blocks with stride-2 downsampling and projection shortcuts, global
average pooling, linear classifier.  The per-stage structure mirrors the
real ResNet family so layer-size *diversity* (the thing COMPSO's layer
aggregation reacts to) is realistic, unlike the flat `resnet_proxy`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.container import Module, Sequential
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.norm import BatchNorm2d
from repro.nn.pooling import GlobalAvgPool2d
from repro.util.seeding import spawn_rng

__all__ = ["BasicBlock", "MiniResNet", "mini_resnet"]


class BasicBlock(Module):
    """Two 3x3 convs with identity or projection shortcut."""

    def __init__(self, cin: int, cout: int, stride: int = 1, *, rng=0):
        super().__init__()
        rng = spawn_rng(rng)
        self.conv1 = Conv2d(cin, cout, 3, stride=stride, padding=1, rng=spawn_rng(rng, 0))
        self.bn1 = BatchNorm2d(cout)
        self.act1 = ReLU()
        self.conv2 = Conv2d(cout, cout, 3, padding=1, rng=spawn_rng(rng, 1))
        self.bn2 = BatchNorm2d(cout)
        self.act2 = ReLU()
        if stride != 1 or cin != cout:
            self.shortcut: Module | None = Conv2d(
                cin, cout, 1, stride=stride, rng=spawn_rng(rng, 2)
            )
        else:
            self.shortcut = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.act1(self.bn1(self.conv1(x)))
        h = self.bn2(self.conv2(h))
        skip = x if self.shortcut is None else self.shortcut(x)
        return self.act2(h + skip)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self.act2.backward(grad_out)
        g_main = self.conv2.backward(self.bn2.backward(g))
        g_main = self.conv1.backward(self.bn1.backward(self.act1.backward(g_main)))
        g_skip = g if self.shortcut is None else self.shortcut.backward(g)
        return g_main + g_skip


class MiniResNet(Module):
    """Stem + residual stages + classifier head."""

    def __init__(
        self,
        n_classes: int = 10,
        *,
        stem_channels: int = 16,
        stage_blocks: tuple[int, ...] = (1, 1),
        rng=0,
    ):
        super().__init__()
        rng = spawn_rng(rng)
        c = stem_channels
        self.stem = Sequential(
            Conv2d(3, c, 3, padding=1, rng=spawn_rng(rng, 0)), BatchNorm2d(c), ReLU()
        )
        blocks: list[Module] = []
        cin = c
        for si, n_blocks in enumerate(stage_blocks):
            cout = c * (2**si)
            for b in range(n_blocks):
                stride = 2 if (b == 0 and si > 0) else 1
                blocks.append(BasicBlock(cin, cout, stride, rng=spawn_rng(rng, 10 + si * 8 + b)))
                cin = cout
        self.blocks = blocks
        self.pool = GlobalAvgPool2d()
        self.head = Linear(cin, n_classes, rng=spawn_rng(rng, 99))

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.stem(x)
        for blk in self.blocks:
            h = blk(h)
        return self.head(self.pool(h))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self.pool.backward(self.head.backward(grad_out))
        for blk in reversed(self.blocks):
            g = blk.backward(g)
        return self.stem.backward(g)


def mini_resnet(n_classes: int = 10, depth: str = "small", *, rng=0) -> MiniResNet:
    """Named configurations: 'small' (2 stages) or 'deep' (3 stages)."""
    stages = {"small": (1, 1), "deep": (2, 2, 2)}
    if depth not in stages:
        raise ValueError(f"depth must be one of {sorted(stages)}, got {depth!r}")
    return MiniResNet(n_classes, stage_blocks=stages[depth], rng=rng)
