"""Layer-shape catalogs of the paper's four real models.

Communication-volume and timing experiments (Figs. 1, 7, 9; Table 2) do
not need trainable weights — only the exact per-layer K-FAC gradient
shapes, Kronecker-factor dimensions and forward FLOPs of ResNet-50,
Mask R-CNN, BERT-large and GPT-neo-125M.  These catalogs enumerate every
K-FAC layer of the real architectures.

A K-FAC layer's communication payload is its preconditioned gradient
matrix ``out_f x in_f`` (bias column folded in); its factor-allreduce
payload is ``in_f^2 + out_f^2`` floats; its eigendecomposition cost is
``O(in_f^3 + out_f^3)``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LayerShape",
    "resnet50_catalog",
    "maskrcnn_catalog",
    "bert_large_catalog",
    "gpt_neo_125m_catalog",
    "MODEL_CATALOGS",
    "catalog_param_count",
]


@dataclass(frozen=True)
class LayerShape:
    """One K-FAC layer of a real architecture."""

    name: str
    #: Output features (rows of the gradient matrix).
    out_f: int
    #: Input features including the bias column (columns of the gradient).
    in_f: int
    #: Forward FLOPs per sample for this layer.
    fwd_flops: float

    @property
    def grad_elems(self) -> int:
        return self.out_f * self.in_f

    @property
    def grad_bytes(self) -> int:
        return 4 * self.grad_elems

    @property
    def factor_elems(self) -> int:
        return self.in_f**2 + self.out_f**2

    @property
    def factor_bytes(self) -> int:
        return 4 * self.factor_elems

    @property
    def eig_dims(self) -> tuple[int, int]:
        return (self.in_f, self.out_f)


def _conv(name: str, cin: int, cout: int, k: int, h: int, w: int, stride: int = 1) -> LayerShape:
    """Conv layer shape at input resolution h x w."""
    oh, ow = h // stride, w // stride
    in_f = cin * k * k + 1
    flops = 2.0 * cout * (cin * k * k) * oh * ow
    return LayerShape(name, cout, in_f, flops)


def _fc(name: str, fin: int, fout: int, seq: int = 1) -> LayerShape:
    return LayerShape(name, fout, fin + 1, 2.0 * fin * fout * seq)


def resnet50_catalog(resolution: int = 224) -> list[LayerShape]:
    """All 54 K-FAC layers of ResNet-50 (53 convs + final FC), ~25.6M params."""
    r = resolution
    layers = [_conv("conv1", 3, 64, 7, r, r, stride=2)]
    r //= 4  # stride-2 conv + maxpool
    # (blocks, mid_channels, out_channels, stride of first block)
    stages = [(3, 64, 256, 1), (4, 128, 512, 2), (6, 256, 1024, 2), (3, 512, 2048, 2)]
    cin = 64
    for si, (blocks, mid, cout, stride) in enumerate(stages):
        for b in range(blocks):
            s = stride if b == 0 else 1
            prefix = f"layer{si + 1}.{b}"
            layers.append(_conv(f"{prefix}.conv1", cin, mid, 1, r, r, stride=1))
            layers.append(_conv(f"{prefix}.conv2", mid, mid, 3, r, r, stride=s))
            r_out = r // s
            layers.append(_conv(f"{prefix}.conv3", mid, cout, 1, r_out, r_out))
            if b == 0:
                layers.append(_conv(f"{prefix}.downsample", cin, cout, 1, r, r, stride=s))
            cin = cout
            r = r_out
    layers.append(_fc("fc", 2048, 1000))
    return layers


def maskrcnn_catalog(resolution: int = 544) -> list[LayerShape]:
    """Mask R-CNN with ResNet-50-FPN backbone (~44M params).

    Backbone at detection resolution (default 544px; COCO training uses
    ~800px shorter side, 544 keeps FLOPs in the calibrated envelope),
    FPN lateral/output convs, RPN head, box head (two 1024-wide FCs and
    predictors), and the 4-conv mask head.
    """
    layers = list(resnet50_catalog(resolution=resolution))[:-1]  # drop the fc
    # FPN: 4 lateral 1x1 convs + 4 output 3x3 convs at 256 channels.
    fpn_res = [resolution // 4 // s for s in (1, 2, 4, 8)]
    for i, (cin, r) in enumerate(zip([256, 512, 1024, 2048], fpn_res)):
        layers.append(_conv(f"fpn.lateral{i}", cin, 256, 1, r, r))
        layers.append(_conv(f"fpn.output{i}", 256, 256, 3, r, r))
    # RPN head: shared 3x3 conv + objectness/bbox 1x1 convs.
    r0 = resolution // 4
    layers.append(_conv("rpn.conv", 256, 256, 3, r0, r0))
    layers.append(_conv("rpn.cls", 256, 3, 1, r0, r0))
    layers.append(_conv("rpn.bbox", 256, 12, 1, r0, r0))
    # Box head: 7x7x256 pooled features -> 1024 -> 1024 -> (81 cls, 320 box).
    layers.append(_fc("roi.box_fc1", 256 * 7 * 7, 1024))
    layers.append(_fc("roi.box_fc2", 1024, 1024))
    layers.append(_fc("roi.cls_score", 1024, 81))
    layers.append(_fc("roi.bbox_pred", 1024, 324))
    # Mask head: four 3x3 convs + deconv + predictor at 14x14.
    for i in range(4):
        layers.append(_conv(f"roi.mask_fcn{i + 1}", 256, 256, 3, 14, 14))
    layers.append(_conv("roi.mask_deconv", 256, 256, 2, 14, 14))
    layers.append(_conv("roi.mask_pred", 256, 80, 1, 28, 28))
    return layers


def _transformer_catalog(
    prefix: str, n_layers: int, hidden: int, ffn: int, seq: int
) -> list[LayerShape]:
    layers = []
    for i in range(n_layers):
        p = f"{prefix}.{i}"
        for proj in ("q", "k", "v", "o"):
            layers.append(_fc(f"{p}.attn.{proj}", hidden, hidden, seq=seq))
        layers.append(_fc(f"{p}.mlp.fc1", hidden, ffn, seq=seq))
        layers.append(_fc(f"{p}.mlp.fc2", ffn, hidden, seq=seq))
    return layers


def bert_large_catalog(seq: int = 512) -> list[LayerShape]:
    """BERT-large encoder: 24 layers, hidden 1024, FFN 4096 (~303M K-FAC params)."""
    layers = _transformer_catalog("encoder", 24, 1024, 4096, seq)
    layers.append(_fc("pooler", 1024, 1024, seq=1))
    # MLM transform head (decoder weight is tied to the embedding).
    layers.append(_fc("mlm.transform", 1024, 1024, seq=seq))
    return layers


def gpt_neo_125m_catalog(seq: int = 2048) -> list[LayerShape]:
    """GPT-neo-125M: 12 layers, hidden 768, FFN 3072 (~85M K-FAC params)."""
    return _transformer_catalog("decoder", 12, 768, 3072, seq)


MODEL_CATALOGS = {
    "resnet50": resnet50_catalog,
    "maskrcnn": maskrcnn_catalog,
    "bert-large": bert_large_catalog,
    "gpt-neo-125m": gpt_neo_125m_catalog,
}


def catalog_param_count(layers: list[LayerShape]) -> int:
    return sum(l.grad_elems for l in layers)
