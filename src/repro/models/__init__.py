"""Models: real-architecture layer catalogs and trainable proxies."""

from repro.models.catalogs import (
    MODEL_CATALOGS,
    LayerShape,
    bert_large_catalog,
    catalog_param_count,
    gpt_neo_125m_catalog,
    maskrcnn_catalog,
    resnet50_catalog,
)
from repro.models.resnet import BasicBlock, MiniResNet, mini_resnet
from repro.models.squad import SpanQaModel
from repro.models.proxies import (
    DetectionProxy,
    bert_proxy,
    gpt_proxy,
    maskrcnn_proxy,
    resnet_proxy,
)
from repro.models.transformer import TransformerBlock, TransformerLM

__all__ = [
    "LayerShape",
    "MODEL_CATALOGS",
    "resnet50_catalog",
    "maskrcnn_catalog",
    "bert_large_catalog",
    "gpt_neo_125m_catalog",
    "catalog_param_count",
    "resnet_proxy",
    "maskrcnn_proxy",
    "bert_proxy",
    "gpt_proxy",
    "DetectionProxy",
    "MiniResNet",
    "BasicBlock",
    "mini_resnet",
    "SpanQaModel",
    "TransformerLM",
    "TransformerBlock",
]
