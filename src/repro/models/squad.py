"""Extractive-QA span-prediction model (SQuAD-style fine-tuning proxy).

A BERT-style encoder with per-position start/end heads, as in the
original BERT SQuAD recipe.  Used for Table 1: fine-tune under different
gradient compressors and compare span F1 / exact match against the
no-compression target.
"""

from __future__ import annotations

import numpy as np

from repro.models.transformer import TransformerBlock
from repro.nn.embedding import Embedding
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.nn.norm import LayerNorm
from repro.util.seeding import spawn_rng

__all__ = ["SpanQaModel"]


class SpanQaModel(Module):
    """(N, T) token ids -> (N, T, 2) start/end span logits."""

    def __init__(
        self,
        vocab: int = 32,
        dim: int = 32,
        heads: int = 4,
        n_layers: int = 2,
        max_seq: int = 32,
        *,
        rng=0,
    ):
        super().__init__()
        rng = spawn_rng(rng)
        self.embed = Embedding(vocab, dim, rng=spawn_rng(rng, 0))
        self.pos = Parameter(spawn_rng(rng, 1).normal(0.0, 0.02, (max_seq, dim)))
        self.blocks = [
            TransformerBlock(dim, heads, 4 * dim, causal=False, rng=spawn_rng(rng, 2 + i))
            for i in range(n_layers)
        ]
        self.ln_f = LayerNorm(dim)
        self.span_head = Linear(dim, 2, rng=spawn_rng(rng, 50))

    def forward(self, ids: np.ndarray) -> np.ndarray:
        n, t = ids.shape
        h = self.embed(ids) + self.pos.data[:t]
        for blk in self.blocks:
            h = blk(h)
        self._t = t
        return self.span_head(self.ln_f(h))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self.ln_f.backward(self.span_head.backward(grad_out))
        for blk in reversed(self.blocks):
            g = blk.backward(g)
        self.pos.grad[: self._t] += g.sum(axis=0)
        return self.embed.backward(g)
