"""Small transformer language models (BERT-style encoder / GPT-style decoder).

Pre-LN blocks with K-FAC-preconditioned Linear projections everywhere.
Sized to train in seconds on CPU while exposing the same per-layer K-FAC
gradient structure as the paper's BERT-large / GPT-neo-125M workloads.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import GELU
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.embedding import Embedding
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.nn.norm import LayerNorm
from repro.util.seeding import spawn_rng

__all__ = ["TransformerBlock", "TransformerLM"]


class TransformerBlock(Module):
    """Pre-LN block: x + attn(ln1(x)), then h + mlp(ln2(h))."""

    def __init__(self, dim: int, heads: int, ffn: int, *, causal: bool, rng=0):
        super().__init__()
        rng = spawn_rng(rng)
        self.ln1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, heads, causal=causal, rng=spawn_rng(rng, 0))
        self.ln2 = LayerNorm(dim)
        self.fc1 = Linear(dim, ffn, rng=spawn_rng(rng, 1))
        self.act = GELU()
        self.fc2 = Linear(ffn, dim, rng=spawn_rng(rng, 2))

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = x + self.attn(self.ln1(x))
        y = h + self.fc2(self.act(self.fc1(self.ln2(h))))
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g_mlp = self.ln2.backward(
            self.fc1.backward(self.act.backward(self.fc2.backward(grad_out)))
        )
        g_h = grad_out + g_mlp
        g_attn = self.ln1.backward(self.attn.backward(g_h))
        return g_h + g_attn


class TransformerLM(Module):
    """Token + learned positional embeddings, N blocks, final LN, LM head."""

    def __init__(
        self,
        vocab: int,
        dim: int = 32,
        heads: int = 4,
        ffn: int | None = None,
        n_layers: int = 2,
        max_seq: int = 64,
        *,
        causal: bool = True,
        rng=0,
    ):
        super().__init__()
        rng = spawn_rng(rng)
        ffn = ffn if ffn is not None else 4 * dim
        self.embed = Embedding(vocab, dim, rng=spawn_rng(rng, 0))
        self.pos = Parameter(spawn_rng(rng, 1).normal(0.0, 0.02, (max_seq, dim)))
        self.blocks = [
            TransformerBlock(dim, heads, ffn, causal=causal, rng=spawn_rng(rng, 2 + i))
            for i in range(n_layers)
        ]
        self.ln_f = LayerNorm(dim)
        self.head = Linear(dim, vocab, rng=spawn_rng(rng, 100))
        self.causal = causal
        self.vocab = vocab
        self.dim = dim

    def forward(self, ids: np.ndarray) -> np.ndarray:
        n, t = ids.shape
        h = self.embed(ids) + self.pos.data[:t]
        for blk in self.blocks:
            h = blk(h)
        self._t = t
        return self.head(self.ln_f(h))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self.ln_f.backward(self.head.backward(grad_out))
        for blk in reversed(self.blocks):
            g = blk.backward(g)
        self.pos.grad[: self._t] += g.sum(axis=0)
        return self.embed.backward(g)
