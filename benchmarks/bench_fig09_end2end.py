"""Figure 9 + section 5.4: end-to-end training performance gain.

For all four models, both platforms and 2-16 nodes, computes the
iteration-time speedup over no-compression K-FAC for cuSZ, QSGD,
CocktailSGD, COMPSO-f (fixed aggregation m=4) and COMPSO-p (aggregation
chosen by the performance model), then derives the section 5.4
training-hour table, including the SGD+CocktailSGD comparison via the
paper's iteration-count ratios.

Paper claims reproduced: COMPSO up to ~1.9x (avg ~1.3x); COMPSO-p >=
COMPSO-f; gains grow with GPU count; KFAC+COMPSO beats SGD+CocktailSGD
by ~1.8x average including the iteration-count advantage.
"""

import numpy as np

from benchmarks._common import emit
from repro.core import CompsoCompressor, PerformanceModel
from repro.distributed import PLATFORM1, PLATFORM2
from repro.gpusim import PIPELINES
from repro.kfac_dist import CompressionSpec, KfacIterationModel, MODEL_TIMING_PROFILES
from repro.models.catalogs import MODEL_CATALOGS
from repro.util.seeding import spawn_rng
from repro.util.tables import format_table

#: Measured aggressive-stage ratios (bench_fig07 regenerates these; the
#: values here are the means across models, used for the baselines).
RATIOS = {"cusz": 19.0, "qsgd": 14.0, "cocktail": 28.0, "compso": 27.0}
PIPE = {
    "cusz": "sz-cuda",
    "qsgd": "qsgd-cuda",
    "cocktail": "cocktail-pytorch",
    "compso": "compso-cuda",
}

#: Iterations-to-convergence: KFAC vs SGD (paper section 5.1: 40 vs 60
#: epochs, 1000 vs 1800, 1000 vs 1563, 3000 vs 5000).
SGD_ITER_RATIO = {
    "resnet50": 60 / 40,
    "maskrcnn": 1800 / 1000,
    "bert-large": 1563 / 1000,
    "gpt-neo-125m": 5000 / 3000,
}

NODE_COUNTS = (2, 4, 8, 16)


def _choose_aggregation(model_name, catalog, world):
    """COMPSO-p: run the performance model's aggregation decision on
    catalog-sized synthetic gradients."""
    rng = spawn_rng(0, hash(model_name) % 997)
    grads = []
    for l in catalog[:16]:
        n = min(l.grad_elems, 100_000)
        small = rng.standard_normal(n) * 1e-4
        big = rng.standard_normal(n) * np.exp(rng.standard_normal(n)) * 5e-2
        grads.append(np.where(rng.random(n) < 0.12, big, small).astype(np.float32))
    pm = PerformanceModel(PLATFORM1.network, world_size=world)
    m, _ = pm.choose_aggregation(grads, CompsoCompressor(4e-3, 4e-3), r=0.45)
    return m


def run_experiment():
    rows = []
    for model, catalog_fn in MODEL_CATALOGS.items():
        catalog = catalog_fn()
        prof = MODEL_TIMING_PROFILES[model]
        for pname, plat in (("P1", PLATFORM1), ("P2", PLATFORM2)):
            for nodes in NODE_COUNTS:
                m = KfacIterationModel(catalog, plat, nodes, profile=prof)
                row = [model, pname, nodes * plat.gpus_per_node]
                for cname in ("cusz", "qsgd", "cocktail"):
                    spec = CompressionSpec(RATIOS[cname], PIPELINES[PIPE[cname]], 1)
                    row.append(m.end_to_end_speedup(spec))
                row.append(
                    m.end_to_end_speedup(
                        CompressionSpec(RATIOS["compso"], PIPELINES["compso-cuda"], 4)
                    )
                )
                m_p = _choose_aggregation(model, catalog, m.world)
                row.append(
                    m.end_to_end_speedup(
                        CompressionSpec(RATIOS["compso"], PIPELINES["compso-cuda"], m_p)
                    )
                )
                rows.append(row)
    return rows


def hours_table(rows):
    """Section 5.4: training hours at 8 GPUs, P1, before/after COMPSO and
    vs SGD+CocktailSGD."""
    base_hours = {"resnet50": 5.0, "maskrcnn": 1.0, "bert-large": 54.0, "gpt-neo-125m": 1.0}
    out = []
    for model in MODEL_CATALOGS:
        r = next(r for r in rows if r[0] == model and r[1] == "P1" and r[2] == 8)
        compso_p = r[7]
        kfac_hours = base_hours[model]
        compso_hours = kfac_hours / compso_p
        sgd_hours = kfac_hours * SGD_ITER_RATIO[model]  # SGD needs more iterations
        out.append(
            [model, sgd_hours, kfac_hours, compso_hours, sgd_hours / compso_hours]
        )
    return out


def test_fig9_end_to_end(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["model", "platform", "gpus", "cusz", "qsgd", "cocktail", "COMPSO-f", "COMPSO-p"],
        rows,
        title="Figure 9 — end-to-end speedup over no-compression K-FAC",
        floatfmt=".2f",
    )
    hrs = hours_table(rows)
    hrs_table = format_table(
        ["model", "SGD+cocktail h", "KFAC h", "KFAC+COMPSO h", "vs SGD+cocktail"],
        hrs,
        title="Section 5.4 — training-hours comparison (8 GPUs, Platform 1)",
    )
    emit(
        "fig09_end2end",
        table + "\n\n" + hrs_table,
        data={
            "speedups": [
                {
                    "model": r[0],
                    "platform": r[1],
                    "gpus": r[2],
                    "cusz": r[3],
                    "qsgd": r[4],
                    "cocktail": r[5],
                    "compso_f": r[6],
                    "compso_p": r[7],
                }
                for r in rows
            ],
            "training_hours": [
                {
                    "model": h[0],
                    "sgd_cocktail_h": h[1],
                    "kfac_h": h[2],
                    "kfac_compso_h": h[3],
                    "vs_sgd_cocktail": h[4],
                }
                for h in hrs
            ],
        },
    )

    f_col, p_col = 6, 7
    compso_f = [r[f_col] for r in rows]
    compso_p = [r[p_col] for r in rows]
    # Paper: up to 1.9x, average ~1.3-1.5x; the perf model never hurts.
    assert 1.0 < min(compso_f)
    assert max(compso_p) < 2.0
    assert 1.2 < float(np.mean(compso_p)) < 1.6
    assert all(p >= f - 1e-9 for f, p in zip(compso_f, compso_p))
    # COMPSO beats every baseline configuration.
    for r in rows:
        assert r[p_col] >= max(r[3], r[4], r[5]) - 1e-9, r
    # Gains grow (weakly) with GPU count per model/platform.
    for model in MODEL_CATALOGS:
        for plat in ("P1", "P2"):
            series = [r[p_col] for r in rows if r[0] == model and r[1] == plat]
            assert series[-1] >= series[0] - 0.05
    # Section 5.4: ~1.8x average over SGD+CocktailSGD.
    vs_sgd = [row[4] for row in hours_table(rows)]
    assert 1.5 < float(np.mean(vs_sgd)) < 2.6
