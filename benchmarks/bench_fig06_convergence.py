"""Figure 6 (a+b): convergence of K-FAC vs SGD and under compression.

Reproduces the two claims:
1. K-FAC converges in fewer iterations than SGD(+CocktailSGD) to the
   same target metric (paper: 40 vs 60 epochs on ResNet-50 etc.);
2. K-FAC with cuSZ loses accuracy, while QSGD-8bit, CocktailSGD and
   COMPSO track the no-compression baseline (Fig. 6b's metric table).

Run on all three Fig. 6 workloads: classification (ResNet-50 proxy),
detection (Mask R-CNN proxy, loss metric), and causal LM (GPT proxy,
loss metric).
"""

import numpy as np

from benchmarks._common import emit
from repro.compression import CocktailSgdCompressor, QsgdCompressor, SzCompressor
from repro.core import CompsoCompressor
from repro.data import make_detection_data, make_image_data, make_lm_data
from repro.distributed import SimCluster
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import gpt_proxy, maskrcnn_proxy, resnet_proxy
from repro.optim import Sgd
from repro.train import ClassificationTask, DetectionTask, DistributedSgdTrainer, LmTask
from repro.util.tables import format_table

ITERS = 24


def _setup(workload):
    if workload == "resnet":
        data = make_image_data(500, n_classes=5, size=8, noise=0.45, seed=0)
        return ClassificationTask(data), lambda: resnet_proxy(n_classes=5, channels=8, rng=3), 0.05, "acc%"
    if workload == "maskrcnn":
        data = make_detection_data(400, n_classes=5, n_boxes=2, noise=0.4, seed=0)
        return DetectionTask(data), lambda: maskrcnn_proxy(n_classes=5, n_boxes=2, rng=3), 0.05, "loss"
    data = make_lm_data(400, seq=9, vocab=24, concentration=0.05, seed=0)
    return LmTask(data), lambda: gpt_proxy(vocab=24, dim=16, n_layers=1, max_seq=8, rng=3), 0.1, "loss"


def _run_kfac(workload, compressor):
    task, model_fn, lr, _ = _setup(workload)
    tr = DistributedKfacTrainer(
        model_fn(), task, SimCluster(1, 4, seed=0), lr=lr, inv_update_freq=5,
        compressor=compressor,
    )
    h = tr.train(iterations=ITERS, batch_size=64, eval_every=ITERS)
    return h


def _run_sgd_cocktail(workload):
    task, model_fn, lr, _ = _setup(workload)
    model = model_fn()
    opt = Sgd(model.parameters(), lr=lr, momentum=0.9)
    tr = DistributedSgdTrainer(
        model, task, opt, SimCluster(1, 4, seed=0),
        compressor=CocktailSgdCompressor(0.2, 8),
    )
    return tr.train(iterations=ITERS, batch_size=64, eval_every=ITERS)


CONFIGS = [
    ("kfac (no comp.)", lambda: None),
    ("kfac+cusz", lambda: SzCompressor(4e-3)),
    ("kfac+qsgd", lambda: QsgdCompressor(8)),
    ("kfac+cocktail", lambda: CocktailSgdCompressor(0.2, 8)),
    ("kfac+compso", lambda: CompsoCompressor(4e-3, 4e-3)),
]


def run_experiment():
    results = {}
    for workload in ("resnet", "maskrcnn", "gpt"):
        per = {}
        for name, factory in CONFIGS:
            per[name] = _run_kfac(workload, factory())
        per["sgd+cocktail"] = _run_sgd_cocktail(workload)
        results[workload] = per
    return results


def _iterations_to_loss(losses, target):
    for i, l in enumerate(losses):
        if l <= target:
            return i + 1
    return len(losses)


def test_fig6_convergence(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    blocks = []
    for workload, per in results.items():
        metric_name = _setup(workload)[3]
        rows = [
            [name, h.losses[0], h.losses[-1], h.final_metric()]
            for name, h in per.items()
        ]
        blocks.append(
            format_table(
                ["method", "first loss", "final loss", f"final {metric_name}"],
                rows,
                title=f"Figure 6 — {workload} convergence ({ITERS} iterations, 4 ranks)",
                floatfmt=".3f",
            )
        )
        # Fig. 6a: K-FAC reaches the SGD end-of-run loss in fewer iterations.
        sgd_final = per["sgd+cocktail"].losses[-1]
        kfac_iters = _iterations_to_loss(per["kfac (no comp.)"].losses, sgd_final)
        blocks.append(
            f"{workload}: K-FAC reaches SGD's final loss in {kfac_iters}/{ITERS} iterations"
        )
        assert kfac_iters < ITERS
        # Fig. 6b: COMPSO tracks the no-compression baseline loss.
        assert per["kfac+compso"].losses[-1] <= per["kfac (no comp.)"].losses[-1] * 1.6 + 0.05
    emit(
        "fig06_convergence",
        "\n\n".join(blocks),
        data={
            workload: {
                name: {
                    "first_loss": float(h.losses[0]),
                    "final_loss": float(h.losses[-1]),
                    "final_metric": h.final_metric(),
                }
                for name, h in per.items()
            }
            for workload, per in results.items()
        },
    )
