"""Extension bench: fleet resilience under seeded chaos at 1k–4k ranks.

Eight concurrent K-FAC+COMPSO jobs (mixed 1k/2k/4k-rank worlds, mixed
priorities, staggered arrivals, per-job deadlines) run under the seeded
chaos harness at increasing fault rates.  Each job's drawn plan mixes
stragglers, fabric link degradation, recoverable node failures, and
whole-job crashes; the scheduler restarts crashed jobs from their
exact-resume checkpoints with capped exponential backoff.

The emitted curve (``BENCH_ext_fleet_chaos.json``) is goodput and
makespan vs. fault rate — the fleet-scale analogue of the paper's
"compression utility depends on system conditions" argument: rate 0 is
bit-identical to the faultless fleet, and rising fault rates degrade
goodput while every job still completes inside its retry budget.
"""

import time

from benchmarks._common import emit
from repro.util.tables import format_table

WORLDS = [1024, 2048, 4096]
N_JOBS = 8
RATES = [0.0, 0.5, 1.0, 2.0]
CHAOS_SEED = 11


def _specs():
    from repro.fleet import JobSpec

    return [
        JobSpec(
            f"job{i}",
            world_size=WORLDS[i % len(WORLDS)],
            iterations=3,
            priority=2.0 if i % 4 == 0 else 1.0,
            seed=i,
            arrival=0.002 * i,
            # Sized so the faultless fleet (makespan ~1.8 s of sim time)
            # lands inside the SLO and chaos pushes the tail past it.
            deadline=2.25,
        )
        for i in range(N_JOBS)
    ]


def _run_fleet(rate: float):
    from repro.fleet import FleetScheduler, apply_chaos, fabric_degradations

    specs = apply_chaos(_specs(), rate=rate, seed=CHAOS_SEED)
    start = time.perf_counter()
    result = FleetScheduler(
        specs,
        retry_budget=4,
        fabric_degradations=fabric_degradations(specs, rate=rate, seed=CHAOS_SEED),
    ).run()
    return result, time.perf_counter() - start


def run_experiment():
    return {rate: _run_fleet(rate) for rate in RATES}


def _mean(xs):
    return sum(xs) / len(xs)


def test_ext_fleet_chaos(benchmark):
    sweeps = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    data = {}
    for rate, (result, wall) in sweeps.items():
        goodput = _mean([r.goodput for r in result.reports])
        lost = sum(r.time_lost_s for r in result.reports)
        rows.append(
            [
                rate,
                result.makespan,
                goodput,
                result.total_restarts,
                result.total_preemptions,
                result.jobs_failed,
                result.slo_missed,
                lost,
                wall,
            ]
        )
        data[str(rate)] = {
            "makespan_s": result.makespan,
            "mean_goodput": goodput,
            "restarts": result.total_restarts,
            "preemptions": result.total_preemptions,
            "jobs_failed": result.jobs_failed,
            "slo_missed": result.slo_missed,
            "time_lost_s": lost,
            "wall_s": wall,
        }
    table = format_table(
        [
            "fault rate",
            "makespan s",
            "mean goodput",
            "restarts",
            "preempt",
            "failed",
            "slo miss",
            "lost s",
            "wall s",
        ],
        rows,
        title=(
            f"Fleet chaos sweep — {N_JOBS} jobs at 1k–4k ranks, "
            f"goodput/makespan vs fault rate"
        ),
        floatfmt=".4f",
    )
    emit("ext_fleet_chaos", table, data={"rates": data})

    base = data[str(RATES[0])]
    worst = data[str(RATES[-1])]
    # Rate 0 is the faultless fleet: nothing restarted, nothing lost.
    assert base["restarts"] == 0 and base["time_lost_s"] == 0.0
    # Chaos must actually bite at the nominal rate and beyond...
    assert data["1.0"]["restarts"] >= 1
    # ...and every failed job restarted from checkpoint within budget.
    for rate, (result, _) in sweeps.items():
        assert result.jobs_failed == 0, f"rate {rate}: jobs exhausted retry budget"
        for report in result.reports:
            assert report.steps == 3, f"rate {rate}: {report.name} incomplete"
    # The headline curve: goodput degrades and makespan grows with rate.
    assert worst["mean_goodput"] < base["mean_goodput"]
    assert worst["makespan_s"] > base["makespan_s"]
    assert worst["time_lost_s"] > 0.0
