"""Extension bench: guarded vs unguarded training under payload corruption.

Runs the ``repro.guard`` demonstration scenario: the same distributed
K-FAC + COMPSO workload three times with identical seeds — a fault-free
reference, a guarded run under a seeded fault plan (compressed-payload
bit flips plus a straggler), and the same faulted plan with no guard.
Both faulted runs decline the checksummed ReliableChannel, so corruption
reaches ``decompress`` directly.

The acceptance bar mirrors the robustness issue:

* the guarded run completes every iteration with a finite loss near the
  clean reference, while the unguarded twin crashes or diverges;
* the circuit breaker trips during the fault window and *recovers*
  (half-open probe passes, compression re-enabled) before the end;
* the remediation timeline is non-empty and reconciles with the
  ``guard.remediations`` telemetry counters.

``benchmarks/out/BENCH_ext_guard.json`` carries the full machine-readable
result, including the remediation timeline and breaker transitions.
"""

import math

from benchmarks._common import emit
from repro.guard.scenario import run_guard_scenario
from repro.util.tables import format_table


def run_experiment():
    return run_guard_scenario(
        nodes=2, gpus_per_node=2, iterations=18, batch_size=32, seed=0
    )


def test_ext_guard(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    unguarded = (
        f"raised: {r.unguarded_error}" if r.unguarded_raised else f"{r.unguarded_loss:.4f}"
    )
    rows = [
        ["clean (no faults)", f"{r.clean_loss:.4f}", "completed", "-"],
        [
            "guarded + faults",
            f"{r.guarded_loss:.4f}",
            "completed" if r.guarded_completed else "DNF",
            f"{r.breaker_trips} trip(s), recovered={r.breaker_recovered}",
        ],
        ["unguarded + faults", unguarded, "crashed" if r.unguarded_raised else "completed", "-"],
    ]
    out = format_table(
        ["run", "final loss", "outcome", "breaker"],
        rows,
        title=f"Guarded vs unguarded K-FAC under corruption (world={r.world_size}, "
        f"iters={r.iterations})",
    )
    timeline = "\n".join(
        f"  iter {e['iteration']:>3}  {e['verdict']:<20} -> {e['action']}"
        for e in r.timeline
    )
    out += "\nremediation timeline:\n" + timeline
    emit("ext_guard", out, data=r.to_dict())

    # The guard keeps the run alive and near the clean trajectory...
    assert r.guarded_completed, "guarded run did not finish all iterations"
    assert math.isfinite(r.guarded_loss)
    assert r.guarded_loss < 5.0 * max(r.clean_loss, 1e-6), (
        f"guarded loss {r.guarded_loss} strayed too far from clean {r.clean_loss}"
    )
    # ...while the unguarded twin crashes or degrades under the same plan.
    assert r.unguarded_raised or not math.isfinite(r.unguarded_loss) or (
        r.unguarded_loss > 2.0 * r.guarded_loss
    ), "unguarded run was unaffected — fault plan too weak to demonstrate the guard"
    # The breaker must trip during the fault window and re-close after it.
    assert r.breaker_trips >= 1
    assert r.breaker_recovered, "breaker never passed its half-open probe"
    # The timeline is populated and reconciles with the telemetry counters.
    assert r.timeline, "no remediation was ever applied"
    counted = sum(v for k, v in r.counters.items() if k.startswith("guard.remediations"))
    assert counted == len(r.timeline)
    verdicts = sum(v for k, v in r.counters.items() if k.startswith("guard.verdicts"))
    assert verdicts == sum(r.verdicts.values()) > 0
