"""Ablation: iteration-wise adaptive error bounds vs fixed bounds.

Two parts:

* **Accuracy** — ResNet proxy trained with distributed K-FAC under the
  adaptive schedule vs fixed-aggressive / fixed-conservative bounds: all
  must track the no-compression baseline (proxy layers are tiny, so this
  part is about convergence, not ratio).
* **Ratio** — the schedule's bounds applied to catalog-sized
  K-FAC-gradient data: the aggressive (filter+SR) stage compresses far
  more than the conservative (SR-only) stage, so adapting by iteration
  buys a higher *average* CR than conservative-everywhere while ending
  training at the accuracy-safe setting.
"""

import numpy as np

from benchmarks._common import emit
from repro.core import AdaptiveCompso, CompsoCompressor, StepLrSchedule
from repro.data import make_image_data
from repro.distributed import SimCluster
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import resnet_proxy
from repro.optim import StepLr
from repro.train import ClassificationTask
from repro.util.seeding import spawn_rng
from repro.util.tables import format_table

ITERS = 24
PIVOT = 12


def _train(compressor, seed=0):
    data = make_image_data(600, n_classes=8, size=8, noise=1.0, seed=0)
    task = ClassificationTask(data)
    model = resnet_proxy(n_classes=8, channels=8, rng=3)
    tr = DistributedKfacTrainer(
        model,
        task,
        SimCluster(1, 4, seed=seed),
        lr=0.05,
        inv_update_freq=5,
        lr_schedule=StepLr(0.05, [PIVOT], gamma=0.1),
        compressor=compressor,
    )
    h = tr.train(iterations=ITERS, batch_size=64, eval_every=ITERS, seed=seed)
    return h.final_metric()


def _catalog_payload(seed=11, n=500_000):
    rng = spawn_rng(seed)
    small = rng.standard_normal(n) * 1e-4
    big = rng.standard_normal(n) * np.exp(rng.standard_normal(n)) * 5e-2
    return np.where(rng.random(n) < 0.12, big, small).astype(np.float32)


def run_experiment():
    acc_rows = [
        ["no compression", _train(None)],
        ["adaptive (filter->SR @ LR drop)", _train(AdaptiveCompso(StepLrSchedule(PIVOT)))],
        ["fixed aggressive (filter+SR)", _train(CompsoCompressor(4e-3, 4e-3))],
        ["fixed conservative (SR only)", _train(CompsoCompressor(0.0, 4e-3))],
    ]
    # Stage-wise CR of the schedule on catalog-sized gradients.
    x = _catalog_payload()
    adaptive = AdaptiveCompso(StepLrSchedule(PIVOT))
    crs = []
    for t in range(ITERS):
        crs.append(x.nbytes / adaptive.compress(x).nbytes)
        adaptive.step()
    aggressive_cr = float(np.mean(crs[:PIVOT]))
    conservative_cr = float(np.mean(crs[PIVOT:]))
    mean_adaptive_cr = float(np.mean(crs))
    cr_rows = [
        ["aggressive stage (filter+SR, iters 0-11)", aggressive_cr],
        ["conservative stage (SR only, iters 12-23)", conservative_cr],
        ["adaptive schedule, whole-run mean", mean_adaptive_cr],
        ["conservative everywhere (no mechanism)", conservative_cr],
    ]
    return acc_rows, cr_rows


def test_ablation_adaptive_bounds(benchmark):
    acc_rows, cr_rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    out = format_table(
        ["configuration", "final acc%"],
        acc_rows,
        title="Ablation — adaptive bounds: proxy accuracy (StepLR pivot)",
    )
    out += "\n\n" + format_table(
        ["configuration", "CR on catalog-size gradients"],
        cr_rows,
        title="Ablation — adaptive bounds: compression ratio by stage",
    )
    emit(
        "ablation_adaptive",
        out,
        data={
            "accuracy": {r[0]: r[1] for r in acc_rows},
            "compression_ratio": {r[0]: r[1] for r in cr_rows},
        },
    )
    acc = {r[0]: r[1] for r in acc_rows}
    assert acc["adaptive (filter->SR @ LR drop)"] >= acc["no compression"] - 4.0
    cr = {r[0]: r[1] for r in cr_rows}
    # The mechanism's value: the adaptive mean beats conservative-everywhere.
    assert cr["adaptive schedule, whole-run mean"] > 1.3 * cr["conservative everywhere (no mechanism)"]
    assert cr["aggressive stage (filter+SR, iters 0-11)"] > cr["conservative stage (SR only, iters 12-23)"]
