"""Extension bench: closed-loop autotuning vs every static config.

Runs the same seeded distributed K-FAC + COMPSO workload once per
static menu configuration and once with the ``repro.autotune``
closed-loop controller, all under an identical mid-run link-degradation
window (iterations [4, 8): latency 4x, bandwidth /64).  Runs are scored
on **modelled end-to-end time**: the simulated clock's charge plus the
modelled codec-minus-aggregation seconds the clock does not price
(:func:`repro.autotune.replay_extra_seconds` for the static runs, the
controller's live accumulator for the closed loop) — the same
accounting on both sides.

The acceptance bar mirrors the autotune issue:

* the closed loop beats **every** static ``{compressor, encoder,
  aggregation}`` config in its menu on modelled end-to-end time —
  static dense pays the degraded window at full width, static COMPSO
  pays codec on every clean step, the controller pays neither;
* fidelity is equal or better: the closed-loop final loss stays within
  tolerance of the best static loss (it compresses only the degraded
  phase, and only within its ``max_error`` gate);
* the ledger records >= 1 mid-run reconfiguration, with the first
  retune landing *inside* the degradation window and trading fidelity
  for compression (identity -> a COMPSO candidate).

``benchmarks/out/BENCH_ext_autotune.json`` carries the per-config
table, the decision timeline, and the closed-loop ledger path.
"""

from benchmarks._common import OUT_DIR, emit
from repro import telemetry
from repro.autotune import DEFAULT_MENU, AutotuneConfig, replay_extra_seconds
from repro.core import CompsoCompressor
from repro.data import make_image_data
from repro.distributed import SimCluster
from repro.faults import FaultPlan, LinkDegradation
from repro.guard.guard import GuardConfig
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import resnet_proxy
from repro.obsv import LedgerConfig, autotune_timeline, load_ledger
from repro.train import ClassificationTask
from repro.util.tables import format_table

ITERATIONS = 12
WINDOW = (4, 8)
ALPHA0 = AutotuneConfig().alpha0


def _run(*, compressor, autotune, ledger_path=None):
    """One seeded K-FAC run under the shared degradation window."""
    plan = FaultPlan(
        degradations=[
            LinkDegradation(
                start=WINDOW[0], stop=WINDOW[1], latency_factor=4.0, bandwidth_factor=64.0
            )
        ]
    )
    cluster = SimCluster(2, 2, seed=0, fault_plan=plan)
    trainer = DistributedKfacTrainer(
        resnet_proxy(n_classes=5, channels=16, rng=3),
        ClassificationTask(make_image_data(256, n_classes=5, size=8, noise=0.5, seed=0)),
        cluster,
        lr=0.05,
        inv_update_freq=2,
        compressor=compressor,
        guard=GuardConfig(),
        obsv=LedgerConfig(str(ledger_path)) if ledger_path else None,
        autotune=autotune,
        reliable_channel=False,
    )
    with telemetry.session():
        trainer.train(
            iterations=ITERATIONS, batch_size=32, eval_every=ITERATIONS, seed=0
        )
    return trainer, cluster


def run_experiment():
    results = {}
    # Every static config in the controller's menu, held the whole run.
    # Aggregation is modelled-only (DESIGN.md decision 10), so a static
    # candidate's data plane is its compressor and its aggregation shows
    # up in the replayed extra-seconds term — identical accounting to
    # the controller's live accumulator.
    for cand in DEFAULT_MENU:
        path = OUT_DIR / f"autotune_static_{cand.name}.ledger"
        comp = (
            None
            if cand.is_identity
            else CompsoCompressor(cand.eb_f, cand.eb_q, encoder=cand.encoder, seed=0)
        )
        trainer, cluster = _run(compressor=comp, autotune=None, ledger_path=path)
        extra = replay_extra_seconds(load_ledger(str(path)).steps, cand, alpha=ALPHA0)
        results[f"static:{cand.name}"] = {
            "sim_time": cluster.time,
            "extra_seconds": extra,
            "end_to_end": cluster.time + extra,
            "final_loss": trainer.history.losses[-1],
            "retunes": 0,
        }
    closed_path = OUT_DIR / "autotune_closed_loop.ledger"
    trainer, cluster = _run(
        compressor=CompsoCompressor(4e-3, 4e-3, seed=0),
        autotune=AutotuneConfig(initial="identity", warmup=2, min_dwell=2),
        ledger_path=closed_path,
    )
    controller = trainer.autotune
    decisions = autotune_timeline(load_ledger(str(closed_path)))
    results["closed-loop"] = {
        "sim_time": cluster.time,
        "extra_seconds": controller.modelled_extra_seconds,
        "end_to_end": cluster.time + controller.modelled_extra_seconds,
        "final_loss": trainer.history.losses[-1],
        "retunes": sum(1 for d in decisions if d["kind"] == "retune"),
    }
    return results, decisions, str(closed_path)


def test_ext_autotune(benchmark):
    results, decisions, closed_path = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    rows = [
        [
            name,
            f"{r['sim_time'] * 1e3:.3f}",
            f"{r['extra_seconds'] * 1e3:.3f}",
            f"{r['end_to_end'] * 1e3:.3f}",
            f"{r['final_loss']:.4f}",
            r["retunes"],
        ]
        for name, r in sorted(results.items(), key=lambda kv: kv[1]["end_to_end"])
    ]
    out = format_table(
        ["config", "sim ms", "modelled extra ms", "end-to-end ms", "final loss", "retunes"],
        rows,
        title=f"Closed-loop autotune vs static configs (degraded window "
        f"[{WINDOW[0]}, {WINDOW[1]}) of {ITERATIONS} iters: lat 4x, bw /64)",
    )
    timeline = "\n".join(
        f"  step {d['step']:>3}  {d['kind']:<7} {d['from']} -> {d['to']}"
        for d in decisions
    )
    out += "\ndecision timeline:\n" + (timeline or "  (none)")
    emit(
        "ext_autotune",
        out,
        data={"results": results, "decisions": decisions, "ledger": closed_path},
    )

    closed = results["closed-loop"]
    statics = {k: v for k, v in results.items() if k.startswith("static:")}
    # The closed loop strictly beats every static config end-to-end...
    for name, r in statics.items():
        assert closed["end_to_end"] < r["end_to_end"], (
            f"closed loop ({closed['end_to_end']:.6f}s) did not beat "
            f"{name} ({r['end_to_end']:.6f}s)"
        )
    # ...at equal-or-better fidelity (within noise of the best static).
    best_static_loss = min(r["final_loss"] for r in statics.values())
    assert closed["final_loss"] <= best_static_loss * 1.10 + 1e-6, (
        f"closed-loop loss {closed['final_loss']} strayed from best static "
        f"{best_static_loss}"
    )
    # The ledger shows the controller reconfiguring mid-run, entering a
    # COMPSO config inside the degradation window.
    retunes = [d for d in decisions if d["kind"] == "retune"]
    assert retunes, "no mid-run reconfiguration in the ledger"
    first = retunes[0]
    assert WINDOW[0] <= first["step"] < WINDOW[1], (
        f"first retune at step {first['step']} missed window {WINDOW}"
    )
    assert first["from"] == "identity" and first["to"] != "identity", (
        "degraded link should trade fidelity for compression ratio"
    )
