"""Ablation: variable-width bit packing vs fixed 8-bit codes.

Section 4.3's example: an error bound of 1E-2 needs only ~100
quantisation bins, i.e. a 7-bit representation; packing 7-bit groups
into bytes instead of using QSGD's fixed 256-bin/8-bit format yields
~14% higher ratio.  We reproduce the arithmetic exactly on the packed
stream (8/7 = +14%) and show how much of it the entropy encoder retains,
plus the full-pipeline comparison against QSGD at matched accuracy.
"""

import numpy as np

from benchmarks._common import emit
from repro.compression import QsgdCompressor
from repro.compression.quantize import ErrorBoundedQuantizer
from repro.core.compso import CompsoCompressor
from repro.encoders import get_encoder
from repro.util.bitpack import pack_uints, required_width
from repro.util.seeding import spawn_rng
from repro.util.tables import format_table

#: SR step = eb, so eb 2E-2 over a [-1, 1] normalised range gives ~100
#: bins — the paper's 7-bit example.
EB = 2e-2


def _payload(seed, n=400_000):
    rng = spawn_rng(seed)
    small = rng.standard_normal(n) * 1e-4
    big = rng.standard_normal(n) * np.exp(rng.standard_normal(n)) * 5e-2
    return np.where(rng.random(n) < 0.12, big, small).astype(np.float32)


def run_experiment():
    x = _payload(5)
    enc = get_encoder("ans")
    qt = ErrorBoundedQuantizer(EB, "sr", seed=0).quantize(x)
    shifted = (qt.codes - qt.codes.min()).astype(np.uint64)
    minimal = required_width(int(shifted.max()))
    rows = []
    for width, label in [
        (minimal, f"minimal ({minimal}-bit, paper arithmetic)"),
        (8, "byte-aligned 8-bit (COMPSO)"),
        (16, "fixed 16-bit"),
    ]:
        packed = pack_uints(shifted, width)
        coded = enc.encode(packed)
        rows.append([label, width, len(packed), len(coded)])
    compso_cr = CompsoCompressor(0.0, EB, seed=0).ratio(x)
    qsgd_cr = QsgdCompressor(8, seed=0).ratio(x)
    return rows, minimal, compso_cr, qsgd_cr


def test_ablation_variable_width_packing(benchmark):
    rows, minimal, compso_cr, qsgd_cr = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    packed = {r[1]: r[2] for r in rows}
    coded = {r[1]: r[3] for r in rows}
    packed_gain = packed[8] / packed[minimal] - 1
    out = format_table(
        ["packing", "bits", "packed bytes", "ANS-coded bytes"],
        rows,
        title=f"Ablation — code packing width for SR codes (eb {EB:g})",
    )
    out += (
        f"\n\npacked-stream gain from {minimal}-bit packing: +{packed_gain * 100:.0f}% "
        "(paper section 4.3: ~+14%), but misaligned packing defeats the"
        "\nbyte-wise entropy coder — COMPSO therefore byte-aligns and lets ANS"
        "\nrecover the sub-byte entropy, which beats both alternatives:"
        f"\n  coded bytes: minimal={coded[minimal]}, byte-aligned={coded[8]}, 16-bit={coded[16]}"
        f"\nfull pipeline at matched accuracy: COMPSO(SR-only) CR={compso_cr:.2f} "
        f"vs QSGD-8bit CR={qsgd_cr:.2f}"
    )
    emit(
        "ablation_packing",
        out,
        data={
            "rows": [
                {"packing": r[0], "bits": r[1], "packed_bytes": r[2], "coded_bytes": r[3]}
                for r in rows
            ],
            "minimal_bits": minimal,
            "packed_gain": packed_gain,
            "compso_cr": compso_cr,
            "qsgd_cr": qsgd_cr,
        },
    )
    assert minimal <= 7
    # The paper's arithmetic on the packed stream: 8/minimal - 1 >= 14%.
    assert packed_gain == 8 / minimal - 1
    assert packed_gain >= 0.14 - 1e-9
    # The entropy-coded byte-aligned stream beats everything else.
    assert coded[8] < coded[minimal]
    assert coded[8] < coded[16]
    assert compso_cr > qsgd_cr
