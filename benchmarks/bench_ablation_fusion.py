"""Ablation: section 4.5 GPU optimisations (kernel fusion, warp shuffle).

Quantifies each optimisation's contribution to compression throughput
and to end-to-end training speedup, using the gpusim pipeline ablations.
"""

from benchmarks._common import emit
from repro.distributed import PLATFORM1
from repro.gpusim import PIPELINES
from repro.kfac_dist import CompressionSpec, KfacIterationModel, MODEL_TIMING_PROFILES
from repro.models.catalogs import resnet50_catalog
from repro.util.tables import format_table

SIZES_MB = (10, 60, 120)


def run_experiment():
    base = PIPELINES["compso-cuda"]
    variants = {
        "fused + warp shuffle (COMPSO)": base,
        "no kernel fusion": base.without_fusion(),
        "no warp shuffle": base.without_warp_shuffle(),
        "neither": base.without_fusion().without_warp_shuffle(),
    }
    tput_rows = [
        [name, *[p.throughput(mb * 1e6) for mb in SIZES_MB]]
        for name, p in variants.items()
    ]
    m = KfacIterationModel(
        resnet50_catalog(), PLATFORM1, 16, profile=MODEL_TIMING_PROFILES["resnet50"]
    )
    e2e_rows = [
        [name, m.end_to_end_speedup(CompressionSpec(22.0, p, 4))]
        for name, p in variants.items()
    ]
    return tput_rows, e2e_rows


def test_ablation_gpu_optimisations(benchmark):
    tput_rows, e2e_rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    out = format_table(
        ["variant", *[f"{mb}MB GB/s" for mb in SIZES_MB]],
        tput_rows,
        title="Ablation — GPU optimisations: compression throughput",
        floatfmt=".1f",
    )
    out += "\n\n" + format_table(
        ["variant", "end-to-end speedup"],
        e2e_rows,
        title="Ablation — GPU optimisations: ResNet-50 end-to-end (P1, 16 nodes)",
    )
    emit(
        "ablation_fusion",
        out,
        data={
            "throughput": [
                {
                    "variant": r[0],
                    **{f"{mb}mb_gbps": v for mb, v in zip(SIZES_MB, r[1:])},
                }
                for r in tput_rows
            ],
            "end_to_end": {r[0]: r[1] for r in e2e_rows},
        },
    )
    tput = {r[0]: r[-1] for r in tput_rows}
    full = tput["fused + warp shuffle (COMPSO)"]
    assert full > tput["no kernel fusion"] > tput["neither"]
    assert full > tput["no warp shuffle"]
    e2e = {r[0]: r[1] for r in e2e_rows}
    assert e2e["fused + warp shuffle (COMPSO)"] >= e2e["neither"]
