"""Extension bench: performance-model sensitivity analysis.

Section 4.1 claims the performance model "helps design future
compressors for distributed training communication on various systems".
This bench exercises that: sweep (a) network bandwidth and (b) compressor
throughput (A100 vs H100, fused vs PyTorch pipelines) and report where
compression stops paying off — the design frontier a compressor author
would consult.
"""

import numpy as np

from benchmarks._common import emit
from repro.distributed import SLINGSHOT10, NetworkSpec, Platform
from repro.gpusim import A100, H100, PIPELINES
from repro.kfac_dist import CompressionSpec, KfacIterationModel, MODEL_TIMING_PROFILES
from repro.models.catalogs import bert_large_catalog
from repro.util.tables import format_table

#: Fabric sweep: 50 to 1600 Gb/s.
BANDWIDTHS_GBPS = (50, 100, 200, 400, 800, 1600)


def _platform(gbps: float) -> Platform:
    net = NetworkSpec(
        f"fabric-{gbps}g",
        inter_bw=gbps * 1e9 / 8,
        inter_lat=4e-6,
        intra_bw=300e9,
        intra_lat=1.5e-6,
    )
    return Platform(f"sweep-{gbps}", max_nodes=64, gpus_per_node=4, network=net)


def run_experiment():
    catalog = bert_large_catalog()
    prof = MODEL_TIMING_PROFILES["bert-large"]
    spec_fast = CompressionSpec(22.0, PIPELINES["compso-cuda"], 4)
    spec_slow = CompressionSpec(22.0, PIPELINES["cocktail-pytorch"], 4)
    bw_rows = []
    for gbps in BANDWIDTHS_GBPS:
        m = KfacIterationModel(catalog, _platform(gbps), 16, profile=prof)
        bw_rows.append(
            [
                gbps,
                m.end_to_end_speedup(spec_fast),
                m.end_to_end_speedup(spec_slow),
                m.breakdown().fractions()["kfac_allgather"] * 100,
            ]
        )
    # Device sweep: a faster GPU shrinks compute, raising the comm share,
    # and speeds the compressor itself.
    dev_rows = []
    for dev in (A100, H100):
        m = KfacIterationModel(
            catalog, _platform(100), 16, profile=prof, device=dev
        )
        dev_rows.append(
            [
                dev.name,
                PIPELINES["compso-cuda"].throughput(60e6, dev),
                m.end_to_end_speedup(spec_fast),
            ]
        )
    return bw_rows, dev_rows


def test_ext_sensitivity(benchmark):
    bw_rows, dev_rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    out = format_table(
        ["fabric Gb/s", "e2e speedup (COMPSO)", "e2e (PyTorch pipeline)", "allgather % (no comp.)"],
        bw_rows,
        title="Sensitivity — network bandwidth sweep (BERT-large, 64 GPUs)",
    )
    out += "\n\n" + format_table(
        ["device", "COMPSO GB/s @60MB", "e2e speedup"],
        dev_rows,
        title="Sensitivity — GPU generation (100 Gb/s fabric)",
    )
    emit(
        "ext_sensitivity",
        out,
        data={
            "bandwidth_sweep": [
                {
                    "fabric_gbps": r[0],
                    "speedup_compso": r[1],
                    "speedup_pytorch": r[2],
                    "allgather_pct": r[3],
                }
                for r in bw_rows
            ],
            "device_sweep": [
                {"device": r[0], "compso_gbps_60mb": r[1], "speedup": r[2]}
                for r in dev_rows
            ],
        },
    )
    speedups = [r[1] for r in bw_rows]
    shares = [r[3] for r in bw_rows]
    # Slower fabrics benefit more; comm share falls as bandwidth rises.
    assert all(a >= b - 1e-9 for a, b in zip(speedups, speedups[1:]))
    assert all(a >= b - 1e-9 for a, b in zip(shares, shares[1:]))
    # The fused pipeline dominates the PyTorch one at every bandwidth,
    # and the gap grows as communication stops masking compressor cost.
    gaps = [r[1] - r[2] for r in bw_rows]
    assert all(g >= -1e-9 for g in gaps)
    # Faster GPU -> faster compressor.
    assert dev_rows[1][1] > dev_rows[0][1]
