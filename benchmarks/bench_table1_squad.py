"""Table 1: SQuAD fine-tuning quality under gradient compression.

Fine-tunes the span-QA proxy with distributed K-FAC under each
compressor and reports exact match / span F1, plus the SGD+CocktailSGD
row.  The paper's claim: QSGD-8bit / CocktailSGD / COMPSO land within
noise of the no-compression target (90.44 F1), cuSZ lands below it;
COMPSO uses the staged 4E-3 -> 2E-3 bound refinement.
"""

from benchmarks._common import emit
from repro.compression import CocktailSgdCompressor, QsgdCompressor, SzCompressor
from repro.core import AdaptiveCompso, SmoothLrSchedule
from repro.data import make_squad_data
from repro.distributed import SimCluster
from repro.kfac_dist import DistributedKfacTrainer
from repro.models.squad import SpanQaModel
from repro.optim import Sgd
from repro.train import DistributedSgdTrainer, SquadTask
from repro.util.tables import format_table

ITERS = 60


def _task():
    return SquadTask(make_squad_data(600, seq=16, vocab=24, seed=0))


def _model():
    return SpanQaModel(vocab=24, dim=24, n_layers=2, max_seq=16, rng=1)


def _run_kfac(compressor):
    task = _task()
    tr = DistributedKfacTrainer(
        _model(), task, SimCluster(1, 4, seed=0), lr=0.1, inv_update_freq=5,
        compressor=compressor,
    )
    h = tr.train(iterations=ITERS, batch_size=64, eval_every=ITERS)
    em, f1 = h.final_metric()
    return em, f1


def _run_sgd_cocktail():
    task = _task()
    model = _model()
    opt = Sgd(model.parameters(), lr=0.2, momentum=0.9)
    tr = DistributedSgdTrainer(
        model, task, opt, SimCluster(1, 4, seed=0),
        compressor=CocktailSgdCompressor(0.2, 8),
    )
    h = tr.train(iterations=ITERS, batch_size=64, eval_every=ITERS)
    em, f1 = h.final_metric()
    return em, f1


def run_experiment():
    rows = []
    rows.append(["sgd+cocktail", "20% sparsity + 8-bit", *_run_sgd_cocktail()])
    rows.append(["kfac (no comp.)", "(n/a)", *_run_kfac(None)])
    rows.append(["kfac+cusz", "4E-3 relative", *_run_kfac(SzCompressor(4e-3))])
    rows.append(["kfac+qsgd", "8-bit quant.", *_run_kfac(QsgdCompressor(8))])
    rows.append(
        ["kfac+cocktail", "20% sparsity + 8-bit", *_run_kfac(CocktailSgdCompressor(0.2, 8))]
    )
    # COMPSO: staged bounds 4E-3 -> 2E-3 across four stages (paper's BERT recipe).
    adaptive = AdaptiveCompso(SmoothLrSchedule(ITERS, z=4, alpha=0.5))
    rows.append(["kfac+compso", "iteration-wise adaptive", *_run_kfac(adaptive)])
    return rows


def test_table1_squad(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["approach", "error control", "ExactMatch%", "F1%"],
        rows,
        title="Table 1 — span-QA fine-tuning quality (proxy SQuAD)",
        floatfmt=".2f",
    )
    emit(
        "table1_squad",
        table,
        data={
            "rows": [
                {
                    "approach": r[0],
                    "error_control": r[1],
                    "exact_match": r[2],
                    "f1": r[3],
                }
                for r in rows
            ]
        },
    )
    by = {r[0]: (r[2], r[3]) for r in rows}
    target_f1 = by["kfac (no comp.)"][1]
    # The paper's shape: QSGD/Cocktail/COMPSO land near the target.
    assert by["kfac+qsgd"][1] >= target_f1 - 6.0
    assert by["kfac+compso"][1] >= target_f1 - 6.0
    assert by["kfac+cocktail"][1] >= target_f1 - 8.0
    # Everything learned far beyond the random-span floor.
    assert all(f1 > 30.0 for _, f1 in by.values())
