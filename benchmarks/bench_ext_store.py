"""Extension bench: durable-state crash consistency and storage chaos.

Two sweeps over the sealed checkpoint store (:mod:`repro.store`):

* **Crash-consistency sweep** — a simulated process death
  (:class:`~repro.faults.storage.StorageCrash`) is injected at *every*
  enumerated injection point of the store's save sequence
  (:data:`repro.store.STORE_SAVE_POINTS`).  After each crash a fresh
  store over the same directory must restore a *verified* generation:
  the previous committed one when the crash lands before the manifest
  commit, the new one at or after it.  Replaying the remaining steps
  from the restored generation must reach a final parameter vector
  bit-identical to the uninterrupted run — crashes cost replayed
  steps, never bits.

* **Storage-smoke fleet** — the ``storage-smoke`` preset (bit rot at
  rest, a torn write, a crash inside the save sequence, spread over
  three jobs) runs against a scheduler store.  Generation fallbacks
  must fire, the damaged archives must be quarantined, no job may
  fail, and every job's final loss must match the same fleet run
  clean (no faults, no store) exactly.

Emits ``BENCH_ext_store.json`` with both sweeps.
"""

import shutil
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from benchmarks._common import OUT_DIR, emit
from repro.util.tables import format_table

#: Steps of the direct-trainer scenario; saves land after steps 2 and 4
#: (save indices 0 and 1), the injected crash hits the second save.
TOTAL_STEPS = 6
SAVE_AT = (2, 4)
CRASH_SAVE_INDEX = 1

#: Injection points where the crash lands *before* the manifest commit:
#: the restart must restore the previous generation (step 2).  At
#: ``manifest:replaced`` and later the new generation is committed and
#: the restart restores it (step 4).
_PRE_COMMIT_POINTS = frozenset(
    {
        "save:begin",
        "save:tmp_written",
        "save:replaced",
        "manifest:begin",
        "manifest:tmp_written",
    }
)


def _make_trainer(store=None, seed=0):
    from repro.core import AdaptiveCompso, StepLrSchedule
    from repro.data import make_image_data
    from repro.distributed import SimCluster
    from repro.kfac_dist import DistributedKfacTrainer
    from repro.models import resnet_proxy
    from repro.train import ClassificationTask

    data = make_image_data(200, n_classes=4, size=8, noise=0.6, seed=seed)
    task = ClassificationTask(data)
    cluster = SimCluster(1, 2, seed=seed)
    model = resnet_proxy(n_classes=4, channels=8, rng=seed + 3)
    compressor = AdaptiveCompso(StepLrSchedule(4), seed=seed)
    return DistributedKfacTrainer(
        model,
        task,
        cluster,
        lr=0.05,
        inv_update_freq=3,
        compressor=compressor,
        checkpoint_store=store,
    )


def _batches(seed=0):
    from repro.data.loaders import batch_indices

    return list(batch_indices(200, 16, iterations=TOTAL_STEPS, seed=seed))


def _params(model) -> np.ndarray:
    return np.concatenate([p.data.ravel() for p in model.parameters()])


def _baseline(root: Path) -> np.ndarray:
    """The uninterrupted run: same step/save cadence, no faults."""
    from repro.store import CheckpointStore

    tr = _make_trainer(CheckpointStore(root))
    for i, idx in enumerate(_batches(), start=1):
        tr.step(idx)
        if i in SAVE_AT:
            tr.save_state()
    return _params(tr.model)


def _crash_at(root: Path, point: str):
    """Crash the second save at ``point``, restart, replay to the end.

    Returns ``(restored_step, final_params)`` of the post-restart run.
    """
    from repro.faults.plan import FaultPlan
    from repro.faults.storage import StorageCrash, StorageFaultController
    from repro.store import CheckpointStore

    plan = FaultPlan().add_save_crash(save_index=CRASH_SAVE_INDEX, point=point)
    controller = StorageFaultController(plan)
    store = CheckpointStore(root, hooks_factory=controller.hooks_for)
    tr = _make_trainer(store)
    batches = _batches()
    crashed = False
    for i, idx in enumerate(batches, start=1):
        tr.step(idx)
        if i in SAVE_AT:
            try:
                tr.save_state()
            except StorageCrash:
                crashed = True
                break
    assert crashed, f"SaveCrash at {point!r} never fired"

    # The "restart": a fresh store and trainer over the same directory,
    # as a rebooted process would see it.
    store2 = CheckpointStore(root)
    tr2 = _make_trainer(store2)
    gen = tr2.restore_latest()
    restored = gen.step if gen is not None else 0
    for i, idx in enumerate(batches, start=1):
        if i <= restored:
            continue
        tr2.step(idx)
    return restored, _params(tr2.model)


def _crash_sweep(workdir: Path):
    from repro.store import STORE_SAVE_POINTS

    base = _baseline(workdir / "baseline")
    results = {}
    for point in STORE_SAVE_POINTS:
        slug = point.replace(":", "_")
        restored, params = _crash_at(workdir / f"crash-{slug}", point)
        expected = SAVE_AT[0] if point in _PRE_COMMIT_POINTS else SAVE_AT[1]
        results[point] = {
            "restored_step": restored,
            "expected_step": expected,
            "bit_identical": bool(np.array_equal(params, base)),
        }
    return results


def _storage_fleet(workdir: Path):
    from repro.fleet import FleetScheduler, preset_options, preset_specs

    specs = preset_specs("storage-smoke")
    opts = preset_options("storage-smoke")
    chaotic = FleetScheduler(specs, store_dir=workdir / "store", **opts).run()
    # The clean control: identical specs with the fault plans stripped
    # and no store — the bit-identity reference for every final loss.
    clean = FleetScheduler(
        [replace(s, fault_plan=None) for s in preset_specs("storage-smoke")], **opts
    ).run()
    return chaotic, clean


def run_experiment():
    workdir = OUT_DIR / "store-bench"
    shutil.rmtree(workdir, ignore_errors=True)
    workdir.mkdir(parents=True)
    start = time.perf_counter()
    sweep = _crash_sweep(workdir / "crash")
    chaotic, clean = _storage_fleet(workdir / "fleet")
    wall = time.perf_counter() - start
    shutil.rmtree(workdir, ignore_errors=True)
    return sweep, chaotic, clean, wall


def test_ext_store(benchmark):
    sweep, chaotic, clean, wall = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    crash_rows = [
        [point, r["expected_step"], r["restored_step"], str(r["bit_identical"])]
        for point, r in sweep.items()
    ]
    crash_table = format_table(
        ["crash point", "expect step", "restored step", "bit-identical"],
        crash_rows,
        title=(
            f"Crash-consistency sweep — SaveCrash at every injection point, "
            f"{TOTAL_STEPS} steps, saves at {list(SAVE_AT)}"
        ),
        floatfmt=".0f",
    )

    clean_by_name = {r.name: r for r in clean.reports}
    fleet_rows = []
    fleet_data = {}
    for report in chaotic.reports:
        match = report.final_loss == clean_by_name[report.name].final_loss
        fleet_rows.append(
            [
                report.name,
                report.world_size,
                report.steps,
                report.restarts,
                report.store_fallbacks,
                report.store_quarantined,
                report.state,
                report.final_loss,
                str(match),
            ]
        )
        fleet_data[report.name] = {
            "steps": report.steps,
            "restarts": report.restarts,
            "store_fallbacks": report.store_fallbacks,
            "store_quarantined": report.store_quarantined,
            "store_repairs": report.store_repairs,
            "state": report.state,
            "final_loss": report.final_loss,
            "clean_final_loss": clean_by_name[report.name].final_loss,
            "loss_matches_clean": match,
        }
    fleet_table = format_table(
        [
            "job",
            "world",
            "steps",
            "restarts",
            "fallbacks",
            "quarantined",
            "state",
            "final loss",
            "loss == clean",
        ],
        fleet_rows,
        title="storage-smoke fleet — bit rot / torn write / save crash vs clean control",
        floatfmt=".6f",
    )

    emit(
        "ext_store",
        f"{crash_table}\n\n{fleet_table}",
        data={"crash_sweep": sweep, "fleet": fleet_data, "wall_s": wall},
    )

    # Every crash point restores exactly the expected committed
    # generation and replays to a bit-identical finish.
    for point, r in sweep.items():
        assert r["restored_step"] == r["expected_step"], point
        assert r["bit_identical"], f"{point}: replay diverged from uninterrupted run"
    # The fleet survives the storage chaos: fallbacks fired, damage was
    # quarantined, nothing failed, and no job lost a bit.
    assert chaotic.jobs_failed == 0
    assert sum(d["store_fallbacks"] for d in fleet_data.values()) >= 2
    assert sum(d["store_quarantined"] for d in fleet_data.values()) >= 2
    for name, d in fleet_data.items():
        assert d["state"] == "done", name
        assert d["loss_matches_clean"], f"{name}: storage chaos changed the final loss"
