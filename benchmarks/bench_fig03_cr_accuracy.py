"""Figure 3: compression ratio vs validation accuracy trade-off.

Reproduces the motivating experiment in two (paper-faithful) parts:

* **Ratio panel** — each setting's CR measured on catalog-sized
  K-FAC-gradient-like data for ResNet-50 and BERT-large (the paper
  measures CR on the real models' gradients).
* **Accuracy panel** — proxy models trained with distributed K-FAC under
  each setting.  Proxy-scale training is far more error-tolerant than
  ImageNet-scale, so the "loose" settings are scaled up accordingly
  (SZ 3E-1 / QSGD 3-bit play the role of the paper's SZ 1E-1 / QSGD
  4-bit); the qualitative shape — loose settings trade accuracy for
  ratio, tight settings preserve accuracy at modest ratio — is the
  reproduced claim.
"""

import numpy as np

from benchmarks._common import emit
from repro.compression import QsgdCompressor, SzCompressor
from repro.data import make_image_data, make_lm_data, make_mlm_batches
from repro.distributed import SimCluster
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import bert_proxy, resnet_proxy
from repro.models.catalogs import bert_large_catalog, resnet50_catalog
from repro.train import ClassificationTask, MlmTask
from repro.util.seeding import spawn_rng
from repro.util.tables import format_table

#: (name, ratio-panel compressor, accuracy-panel compressor)
SETTINGS = [
    ("loose-sz (1E-1)", lambda: SzCompressor(1e-1), lambda: SzCompressor(3e-1)),
    ("loose-qsgd (4bit)", lambda: QsgdCompressor(4), lambda: QsgdCompressor(3)),
    ("tight-sz (4E-3)", lambda: SzCompressor(4e-3), lambda: SzCompressor(4e-3)),
    ("tight-qsgd (8bit)", lambda: QsgdCompressor(8), lambda: QsgdCompressor(8)),
]


def _catalog_gradients(catalog, seed, max_layers=16):
    rng = spawn_rng(seed)
    grads = []
    for l in catalog[:max_layers]:
        n = min(l.grad_elems, 150_000)
        small = rng.standard_normal(n) * 1e-4
        big = rng.standard_normal(n) * np.exp(rng.standard_normal(n)) * 5e-2
        grads.append(np.where(rng.random(n) < 0.12, big, small).astype(np.float32))
    return grads


def measure_ratios():
    out = {}
    for model, catalog in (
        ("resnet50", resnet50_catalog()),
        ("bert-large", bert_large_catalog()),
    ):
        grads = _catalog_gradients(catalog, seed=hash(model) % 1009)
        total = sum(g.nbytes for g in grads)
        out[model] = {
            name: total / sum(factory().compress(g).nbytes for g in grads)
            for name, factory, _ in SETTINGS
        }
    return out


def _train_resnet(compressor, seed):
    data = make_image_data(600, n_classes=8, size=8, noise=1.0, seed=0)
    task = ClassificationTask(data)
    model = resnet_proxy(n_classes=8, channels=8, rng=3)
    tr = DistributedKfacTrainer(
        model, task, SimCluster(1, 4, seed=seed), lr=0.05, inv_update_freq=5,
        compressor=compressor,
    )
    h = tr.train(iterations=16, batch_size=64, eval_every=16, seed=seed)
    return h.final_metric()


def _train_bert(compressor, seed):
    lm = make_lm_data(400, seq=12, vocab=24, concentration=0.05, seed=0)
    task = MlmTask(make_mlm_batches(lm, seed=1))
    model = bert_proxy(vocab=24, dim=16, n_layers=1, max_seq=12, rng=3)
    tr = DistributedKfacTrainer(
        model, task, SimCluster(1, 4, seed=seed), lr=0.1, inv_update_freq=5,
        compressor=compressor,
    )
    h = tr.train(iterations=20, batch_size=64, eval_every=20, seed=seed)
    return float(np.exp(-h.final_metric()) * 100)


def measure_accuracy():
    seeds = (0, 1)
    base_r = float(np.mean([_train_resnet(None, s) for s in seeds]))
    base_b = float(np.mean([_train_bert(None, s) for s in seeds]))
    acc = {}
    for name, _, factory in SETTINGS:
        acc[name] = (
            float(np.mean([_train_resnet(factory(), s) for s in seeds])),
            float(np.mean([_train_bert(factory(), s) for s in seeds])),
        )
    return base_r, base_b, acc


def run_experiment():
    return measure_ratios(), measure_accuracy()


def test_fig3_cr_vs_accuracy(benchmark):
    ratios, (base_r, base_b, acc) = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [name, ratios["resnet50"][name], acc[name][0], ratios["bert-large"][name], acc[name][1]]
        for name, _, _ in SETTINGS
    ]
    table = format_table(
        ["setting", "ResNet-50 CR", "ResNet acc%", "BERT CR", "BERT metric"],
        rows,
        title=(
            "Figure 3 — CR (catalog gradients) vs accuracy (proxy, 2 seeds); "
            f"no-compression baselines: ResNet {base_r:.1f}%, BERT {base_b:.1f}"
        ),
    )
    emit(
        "fig03_cr_accuracy",
        table,
        data={
            "baseline": {"resnet_acc": base_r, "bert_metric": base_b},
            "rows": [
                {
                    "setting": r[0],
                    "resnet_cr": r[1],
                    "resnet_acc": r[2],
                    "bert_cr": r[3],
                    "bert_metric": r[4],
                }
                for r in rows
            ],
        },
    )
    # Ratio panel: loose settings compress (much) more.
    for model in ("resnet50", "bert-large"):
        r = ratios[model]
        assert r["loose-sz (1E-1)"] > r["tight-sz (4E-3)"], model
        assert r["loose-qsgd (4bit)"] > r["tight-qsgd (8bit)"], model
    # Accuracy panel: tight settings hold the baseline; loose settings
    # lose at least as much accuracy as tight ones.
    assert acc["tight-qsgd (8bit)"][0] >= base_r - 4.0
    assert acc["tight-sz (4E-3)"][0] >= base_r - 4.0
    assert acc["loose-sz (1E-1)"][0] <= acc["tight-sz (4E-3)"][0] + 1.0
