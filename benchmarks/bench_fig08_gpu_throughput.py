"""Figure 8: GPU compression throughput vs data size.

Evaluates the five implementation pipelines (cuSZ CUDA, QSGD CUDA, QSGD
PyTorch, CocktailSGD PyTorch, COMPSO CUDA) on the calibrated A100
execution model across 1-120 MB payloads.

Paper claims reproduced: fused CUDA pipelines far exceed PyTorch
implementations; QSGD (CUDA) slightly exceeds COMPSO (it skips the
filter); COMPSO is ~1.7x CocktailSGD.
"""

import numpy as np

from benchmarks._common import emit
from repro.gpusim import PIPELINES
from repro.util.tables import format_table

SIZES_MB = (1, 5, 10, 20, 40, 60, 80, 100, 120)
SERIES = ("sz-cuda", "qsgd-cuda", "qsgd-pytorch", "cocktail-pytorch", "compso-cuda")


def run_experiment():
    rows = []
    for mb in SIZES_MB:
        row = [mb]
        for name in SERIES:
            row.append(PIPELINES[name].throughput(mb * 1e6))
        rows.append(row)
    return rows


def test_fig8_gpu_throughput(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["MB", *SERIES],
        rows,
        title="Figure 8 — modelled A100 compression throughput (GB/s)",
        floatfmt=".1f",
    )
    last = dict(zip(SERIES, rows[-1][1:]))
    ratio = last["compso-cuda"] / last["cocktail-pytorch"]
    emit(
        "fig08_gpu_throughput",
        table + f"\n\nCOMPSO / CocktailSGD @120MB = {ratio:.2f}x (paper: 1.7x)",
        data={
            "rows": [
                {"mb": r[0], **dict(zip(SERIES, r[1:]))} for r in rows
            ],
            "compso_vs_cocktail_120mb": ratio,
        },
    )
    assert 1.4 < ratio < 2.1
    assert last["qsgd-cuda"] > last["compso-cuda"] > last["qsgd-pytorch"]
    assert last["compso-cuda"] > last["sz-cuda"]
    # Throughput rises with size for every series (Fig. 8's x-axis trend).
    mat = np.array([r[1:] for r in rows])
    assert np.all(np.diff(mat, axis=0) > 0)
