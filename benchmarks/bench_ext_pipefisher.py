"""Extension bench: data-parallel KAISA vs PipeFisher (paper section 6).

The paper argues pipeline-parallel K-FAC (PipeFisher) is obsolete on
large-memory GPUs.  This bench makes both halves quantitative on
BERT-large:

1. **Memory** — PipeFisher's reason to exist: a pipeline stage holds
   ~1/S of the model + K-FAC state and fits a 16 GB GPU, while a full
   data-parallel replica does not (it needs the A100's 40 GB).
2. **Time** — at equal GPU counts, deepening the pipeline grows the 1F1B
   bubble fraction and drags the iteration, while data parallelism keeps
   scaling; with COMPSO attached, data parallel wins outright at scale.
"""

import numpy as np

from benchmarks._common import emit
from repro.distributed import PLATFORM1
from repro.kfac_dist import (
    CompressionSpec,
    KfacIterationModel,
    MODEL_TIMING_PROFILES,
    PipeFisherModel,
)
from repro.kfac_dist.memory import estimate_kfac_memory, fits_on
from repro.models.catalogs import bert_large_catalog
from repro.util.tables import format_table

STAGE_COUNTS = (4, 8, 16)
MICROBATCHES = 8


def run_experiment():
    catalog = bert_large_catalog()
    prof = MODEL_TIMING_PROFILES["bert-large"]
    rows = []
    for stages in STAGE_COUNTS:
        pf = PipeFisherModel(
            catalog, PLATFORM1, stages=stages, microbatches=MICROBATCHES, profile=prof
        )
        bd = pf.breakdown()
        nodes = max(stages // PLATFORM1.gpus_per_node, 1)
        dp = KfacIterationModel(catalog, PLATFORM1, nodes, profile=prof)
        # DP columns use KAISA's cross-layer overlap (explicitly assumed
        # 0.5 here — the runtime-measured variant lives in
        # bench_runtime_overlap.py); the pipeline schedule already
        # overlaps by construction, so this keeps the comparison fair.
        dp_time = dp.breakdown().overlapped_total(assumed_overlap=0.5)
        dp_compso = dp.breakdown(CompressionSpec.compso(22.0)).overlapped_total(
            assumed_overlap=0.5
        )
        bubble_frac = bd.bubble / (bd.stage_compute + bd.bubble)
        rows.append(
            [
                stages,
                bubble_frac * 100,
                bd.total * 1e3,
                dp_time * 1e3,
                dp_compso * 1e3,
            ]
        )
    # Memory half of the argument.
    full = estimate_kfac_memory(catalog, per_gpu_batch=16)
    stage_frac = PipeFisherModel(
        catalog, PLATFORM1, stages=4, microbatches=MICROBATCHES, profile=prof
    ).per_stage_memory_fraction()
    mem = {
        "full_replica_gb": full.total / 1e9,
        "stage_fraction": stage_frac,
        "stage_gb": full.total * stage_frac / 1e9,
        "replica_fits_a100": fits_on(full, "a100-40gb"),
        "replica_fits_p100": fits_on(full, "p100-16gb"),
    }
    return rows, mem


def test_ext_pipefisher(benchmark):
    rows, mem = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    out = format_table(
        ["stages/GPUs", "bubble %", "PipeFisher ms", "DP-KAISA ms", "DP+COMPSO ms"],
        rows,
        title=f"PipeFisher vs data parallel (BERT-large, {MICROBATCHES} microbatches, equal GPUs)",
        floatfmt=".1f",
    )
    out += (
        f"\n\nmemory: full replica {mem['full_replica_gb']:.1f} GB "
        f"(fits A100-40: {mem['replica_fits_a100']}, fits P100-16: {mem['replica_fits_p100']}); "
        f"a 4-stage slice holds ~{mem['stage_fraction'] * 100:.0f}% "
        f"(~{mem['stage_gb']:.1f} GB) and fits a 16 GB GPU — PipeFisher's "
        "motivation, obsolete once 40 GB GPUs fit the replica."
    )
    emit(
        "ext_pipefisher",
        out,
        data={
            "rows": [
                {
                    "stages": r[0],
                    "bubble_pct": r[1],
                    "pipefisher_ms": r[2],
                    "dp_kaisa_ms": r[3],
                    "dp_compso_ms": r[4],
                }
                for r in rows
            ],
            "memory": mem,
        },
    )
    # Memory argument reproduced.
    assert mem["replica_fits_a100"] and not mem["replica_fits_p100"]
    assert mem["stage_gb"] < 16.0
    # Bubble fraction grows with pipeline depth.
    bubbles = [r[1] for r in rows]
    assert bubbles[0] < bubbles[-1]
    # At scale, data parallel with COMPSO beats the pipeline.
    deepest = rows[-1]
    assert deepest[4] < deepest[2]
