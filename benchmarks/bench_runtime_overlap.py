"""Runtime bench: blocking vs scheduled-overlap K-FAC iteration time.

The `repro.runtime` engine replaces the timing model's assumed overlap
constants with a scheduler: nonblocking collectives travel on per-rank
comm streams and only their exposed tails cost simulated time.  This
bench trains the same K-FAC proxy in both execution modes across
2-64 ranks on Slingshot-10 and Slingshot-11 and reports the measured
hidden-communication fraction.

Assertions encode the engine's contract: the two modes are bit-identical
in parameter space everywhere, the overlapped run is never slower, and
at >=16 ranks on Slingshot-10 (where collectives are long enough to hide
under compute) it is strictly faster.
"""

import numpy as np

from benchmarks._common import emit
from repro.data import make_image_data
from repro.distributed import SLINGSHOT10, SLINGSHOT11, SimCluster
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import resnet_proxy
from repro.runtime import ComputeModel, StreamRuntime
from repro.train import ClassificationTask
from repro.util.tables import format_table

RANKS = (2, 4, 8, 16, 32, 64)
NETWORKS = (("slingshot10", SLINGSHOT10), ("slingshot11", SLINGSHOT11))
ITERATIONS = 3
#: Tiny-proxy training throughput: scaled down so modelled compute is on
#: the same footing as the proxy's communication (A100 flops would make
#: a 2725-parameter model's compute vanish and leave nothing to overlap).
TRAIN_FLOPS = 5e7


def _run(network, ranks: int, overlap: bool):
    data = make_image_data(200, n_classes=5, size=8, noise=0.4, seed=0)
    task = ClassificationTask(data)
    gpus = 4 if ranks >= 4 else ranks
    cluster = SimCluster(ranks // gpus, gpus, seed=0, network=network)
    model = resnet_proxy(n_classes=5, channels=8, rng=3)
    rt = StreamRuntime(
        cluster, overlap=overlap, compute=ComputeModel(train_flops=TRAIN_FLOPS)
    )
    trainer = DistributedKfacTrainer(
        model, task, cluster, lr=0.05, inv_update_freq=2, runtime=rt
    )
    trainer.train(iterations=ITERATIONS, batch_size=4 * ranks)
    params = np.concatenate([p.data.ravel() for p in model.parameters()])
    return params, cluster.time, rt


def run_experiment():
    rows = []
    configs = []
    for net_name, network in NETWORKS:
        for ranks in RANKS:
            blk_params, blk_time, _ = _run(network, ranks, overlap=False)
            ovl_params, ovl_time, rt = _run(network, ranks, overlap=True)
            assert np.array_equal(blk_params, ovl_params), (
                f"overlapped params diverged from blocking ({net_name}, {ranks} ranks)"
            )
            cfg = {
                "network": net_name,
                "ranks": ranks,
                "blocking_seconds": blk_time,
                "overlapped_seconds": ovl_time,
                "speedup": blk_time / ovl_time,
                "hidden_comm_seconds": rt.hidden_comm_seconds(),
                "exposed_comm_seconds": rt.exposed_comm_seconds(),
                "hidden_fraction": rt.hidden_fraction(),
                "bit_identical": True,
            }
            configs.append(cfg)
            rows.append(
                [
                    net_name,
                    ranks,
                    blk_time * 1e3,
                    ovl_time * 1e3,
                    cfg["speedup"],
                    cfg["hidden_fraction"] * 100,
                ]
            )
    return rows, configs


def test_runtime_overlap(benchmark):
    rows, configs = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    out = format_table(
        ["network", "ranks", "blocking ms", "overlapped ms", "speedup", "hidden %"],
        rows,
        title=f"Blocking vs scheduled overlap (K-FAC proxy, {ITERATIONS} iterations)",
        floatfmt=".3f",
    )
    out += (
        "\n\nhidden % is measured by the stream scheduler (exposed-tail "
        "accounting), not assumed; both modes are verified bit-identical "
        "in parameter space."
    )
    emit(
        "runtime_overlap",
        out,
        data={
            "iterations": ITERATIONS,
            "train_flops": TRAIN_FLOPS,
            "configs": configs,
            "max_hidden_fraction": max(c["hidden_fraction"] for c in configs),
        },
    )
    # Bit-identical everywhere (asserted per config while running).
    assert all(c["bit_identical"] for c in configs)
    # Overlap never loses: the scheduler only ever hides time.
    assert all(c["overlapped_seconds"] <= c["blocking_seconds"] for c in configs)
    # At scale on Slingshot-10 the win is strict and comm is hidden.
    at_scale = [
        c for c in configs if c["network"] == "slingshot10" and c["ranks"] >= 16
    ]
    assert at_scale
    for c in at_scale:
        assert c["overlapped_seconds"] < c["blocking_seconds"]
        assert c["hidden_comm_seconds"] > 0.0
