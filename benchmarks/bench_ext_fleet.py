"""Extension bench: fleet-scale simulation on the representative path.

Two experiments, both on the timing track's representative-rank data
plane (O(1) payload memory in world size, which is what makes 16k-rank
worlds tractable on a laptop-class host):

1. **Fleet sweep** — twelve concurrent K-FAC+COMPSO jobs time-sharing
   one fabric at 1k, 4k, and 16k ranks each: completion, weighted-fair
   contention (priority-2 jobs slowed less than priority-1), and peak
   payload memory *flat* across the three world sizes.
2. **Single-job compression sweep** (fig. 7 / fig. 9 style) —
   compressed vs uncompressed preconditioned-gradient exchange at the
   same world sizes, reporting the kfac_allgather speedup and the
   end-to-end simulated-time speedup.
"""

import time

from benchmarks._common import emit
from repro.util.tables import format_table

WORLDS = [1024, 4096, 16384]
N_JOBS = 12


def _fleet_specs(world: int):
    from repro.fleet import JobSpec

    return [
        JobSpec(
            f"job{i}",
            world_size=world,
            iterations=2,
            priority=2.0 if i % 4 == 0 else 1.0,
            seed=i,
            arrival=0.01 * i,
        )
        for i in range(N_JOBS)
    ]


def _run_fleet(world: int):
    from repro.fleet import FleetScheduler

    start = time.perf_counter()
    result = FleetScheduler(_fleet_specs(world)).run()
    return result, time.perf_counter() - start


def _run_single(world: int, eb: float | None):
    from repro.core import CompsoCompressor
    from repro.data import make_image_data
    from repro.distributed import SLINGSHOT10, SimCluster
    from repro.kfac_dist import DistributedKfacTrainer
    from repro.models import resnet_proxy
    from repro.train import ClassificationTask

    cluster = SimCluster.from_world_size(
        world, 4, seed=0, network=SLINGSHOT10, track="timing"
    )
    trainer = DistributedKfacTrainer(
        resnet_proxy(n_classes=5, channels=8, rng=3),
        ClassificationTask(make_image_data(256, n_classes=5, size=8, noise=0.5, seed=0)),
        cluster,
        lr=0.05,
        inv_update_freq=2,
        compressor=CompsoCompressor(eb, eb, seed=0) if eb is not None else None,
    )
    trainer.train(iterations=3, batch_size=64)
    return cluster


def run_experiment():
    fleets = {w: _run_fleet(w) for w in WORLDS}
    singles = {w: {"comp": _run_single(w, 4e-3), "dense": _run_single(w, None)} for w in WORLDS}
    return fleets, singles


def test_ext_fleet(benchmark):
    fleets, singles = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    fleet_rows = []
    fleet_data = {}
    for world, (result, wall) in fleets.items():
        hi = [r.slowdown for r in result.reports if r.priority > 1.0]
        lo = [r.slowdown for r in result.reports if r.priority == 1.0]
        peak = max(r.peak_payload_bytes for r in result.reports)
        fleet_rows.append(
            [
                world,
                len(result.reports),
                result.makespan,
                result.total_contended_seconds,
                sum(hi) / len(hi),
                sum(lo) / len(lo),
                peak / 1024,
                wall,
            ]
        )
        fleet_data[str(world)] = {
            "jobs": len(result.reports),
            "makespan_s": result.makespan,
            "contended_s": result.total_contended_seconds,
            "mean_slowdown_hi_prio": sum(hi) / len(hi),
            "mean_slowdown_lo_prio": sum(lo) / len(lo),
            "peak_payload_bytes": peak,
            "wall_s": wall,
        }
    fleet_table = format_table(
        [
            "ranks/job",
            "jobs",
            "makespan s",
            "contended s",
            "slowdown p2",
            "slowdown p1",
            "peak KiB",
            "wall s",
        ],
        fleet_rows,
        title=f"Fleet sweep — {N_JOBS} concurrent K-FAC+COMPSO jobs on shared fabric",
        floatfmt=".3f",
    )

    sweep_rows = []
    sweep_data = {}
    for world, pair in singles.items():
        comp, dense = pair["comp"], pair["dense"]
        ag_c = comp.breakdown().get("kfac_allgather", 0.0)
        ag_d = dense.breakdown().get("kfac_allgather", 0.0)
        sweep_rows.append(
            [world, ag_d, ag_c, ag_d / ag_c, dense.time, comp.time, dense.time / comp.time]
        )
        sweep_data[str(world)] = {
            "allgather_dense_s": ag_d,
            "allgather_comp_s": ag_c,
            "allgather_speedup": ag_d / ag_c,
            "sim_dense_s": dense.time,
            "sim_comp_s": comp.time,
            "end2end_speedup": dense.time / comp.time,
        }
    sweep_table = format_table(
        [
            "ranks",
            "allgather dense s",
            "allgather comp s",
            "speedup",
            "e2e dense s",
            "e2e comp s",
            "e2e speedup",
        ],
        sweep_rows,
        title="Compression sweep on the representative path (fig. 7 / fig. 9 style)",
        floatfmt=".4f",
    )

    emit("ext_fleet", fleet_table + "\n\n" + sweep_table,
         data={"fleet": fleet_data, "compression_sweep": sweep_data})

    # Every job in every fleet ran to completion.
    for world, (result, _) in fleets.items():
        for report, spec in zip(result.reports, _fleet_specs(world)):
            assert report.steps == spec.iterations, f"{world}: {report.name} incomplete"
        assert result.total_contended_seconds > 0.0, f"{world}: fabric never contended"
        hi = [r.slowdown for r in result.reports if r.priority > 1.0]
        lo = [r.slowdown for r in result.reports if r.priority == 1.0]
        assert sum(hi) / len(hi) < sum(lo) / len(lo), (
            f"{world}: priority-2 jobs should be slowed less than priority-1"
        )
    # The tentpole claim: payload memory independent of world size.
    peaks = {w: fleet_data[str(w)]["peak_payload_bytes"] for w in WORLDS}
    assert len(set(peaks.values())) == 1, f"peak payload varies with world: {peaks}"
    # Compression must pay off at every scale, more at larger worlds.
    for world in WORLDS:
        assert sweep_data[str(world)]["allgather_speedup"] > 1.0
        assert sweep_data[str(world)]["end2end_speedup"] > 1.0
