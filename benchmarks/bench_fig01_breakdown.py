"""Figure 1: time breakdown of distributed K-FAC training.

Reproduces the stacked-bar percentages (KFAC Allgather / KFAC Allreduce /
KFAC Computations / Forward+Backward / Others) for ResNet-50, Mask R-CNN,
BERT-large and GPT-neo-125M at 16/32/64 nodes (4 A100s per node).

Paper headline: broadcast/allgather communication is >=30% of end-to-end
time and grows with model size and GPU count.
"""

from benchmarks._common import emit
from repro.distributed import PLATFORM2
from repro.kfac_dist import KfacIterationModel, MODEL_TIMING_PROFILES
from repro.models.catalogs import MODEL_CATALOGS
from repro.telemetry import Tracer, category_fractions
from repro.util.charts import stacked_bars
from repro.util.tables import format_table

#: Fig. 1's x-axis labels are node counts on a 4-GPU/node system; the
#: 64-node column needs Platform 2's node budget.
NODE_COUNTS = (16, 32, 64)

PAPER_16NODE = {
    "resnet50": (35.1, 10.3, 13.7, 27.3, 13.6),
    "maskrcnn": (35.5, 10.1, 13.5, 26.8, 14.1),
    "bert-large": (36.0, 12.6, 12.5, 25.4, 13.5),
    "gpt-neo-125m": (41.6, 11.4, 12.0, 22.9, 12.1),
}


def breakdown_rows():
    """Fig. 1 percentages, read back from a telemetry trace.

    Each (model, nodes) cell records one modelled iteration as sim-track
    spans via ``KfacIterationModel.record_trace`` and derives the
    percentages from the telemetry category totals — the same numbers a
    ``repro trace`` summary or an exported Chrome trace would show, so
    the figure and the trace cannot disagree.
    """
    rows = []
    for name, catalog_fn in MODEL_CATALOGS.items():
        catalog = catalog_fn()
        for nodes in NODE_COUNTS:
            m = KfacIterationModel(
                catalog, PLATFORM2, nodes, profile=MODEL_TIMING_PROFILES[name]
            )
            tracer = Tracer()
            m.record_trace(tracer)
            fr = category_fractions(tracer)
            rows.append(
                [
                    name,
                    nodes,
                    fr["kfac_allgather"] * 100,
                    fr["kfac_allreduce"] * 100,
                    fr["kfac_compute"] * 100,
                    fr["fwd_bwd"] * 100,
                    (fr.get("others", 0.0) + fr.get("compression", 0.0)) * 100,
                ]
            )
    return rows


def test_fig1_time_breakdown(benchmark):
    rows = benchmark.pedantic(breakdown_rows, rounds=1, iterations=1)
    table = format_table(
        ["model", "nodes", "Allgather%", "Allreduce%", "KFAC comp%", "Fwd+Bwd%", "Others%"],
        rows,
        title="Figure 1 — distributed K-FAC time breakdown (modelled, Slingshot-11)",
        floatfmt=".1f",
    )
    ref = format_table(
        ["model", "Allgather%", "Allreduce%", "KFAC comp%", "Fwd+Bwd%", "Others%"],
        [[k, *v] for k, v in PAPER_16NODE.items()],
        title="Paper Fig. 1 @ 16 nodes (for comparison)",
        floatfmt=".1f",
    )
    labels = [f"{r[0]}@{r[1]}n" for r in rows]
    series = {
        "allgather": [r[2] for r in rows],
        "allreduce": [r[3] for r in rows],
        "kfac-comp": [r[4] for r in rows],
        "fwd+bwd": [r[5] for r in rows],
        "others": [r[6] for r in rows],
    }
    bars = stacked_bars(labels, series, title="Figure 1 (rendered)")
    emit(
        "fig01_breakdown",
        table + "\n\n" + ref + "\n\n" + bars,
        data={
            "rows": [
                {
                    "model": r[0],
                    "nodes": r[1],
                    "allgather_pct": r[2],
                    "allreduce_pct": r[3],
                    "kfac_compute_pct": r[4],
                    "fwd_bwd_pct": r[5],
                    "others_pct": r[6],
                }
                for r in rows
            ],
            "paper_16node": {k: list(v) for k, v in PAPER_16NODE.items()},
        },
    )
    # Paper claims: communication >= 30% everywhere, growing with nodes.
    by_model: dict[str, list[float]] = {}
    for name, nodes, ag, ar, *_ in rows:
        assert ag + ar > 30.0
        by_model.setdefault(name, []).append(ag)
    for name, series in by_model.items():
        assert series[0] <= series[-1] + 1.0, (name, series)
