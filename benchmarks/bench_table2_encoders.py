"""Table 2: lossless-encoder comparison on K-FAC gradient data.

For ResNet-50-like and BERT-large-like quantised gradient payloads,
reports each nvCOMP-candidate encoder's *measured* compression ratio
(real COMPSO pipeline output) and *modelled* GPU (de)compression
throughput (gpusim, calibrated to the paper's Table 2).

Paper claims reproduced: entropy coders (ANS/Deflate/Gdeflate/Zstd) beat
dictionary (LZ4/Snappy) and run-length (Cascaded) coders in ratio on
gradient data; ANS offers the best ratio-throughput combination and is
the selected encoder.
"""

import numpy as np

from benchmarks._common import emit
from repro.core import CompsoCompressor, PerformanceModel
from repro.distributed import SLINGSHOT10
from repro.encoders.registry import NVCOMP_CANDIDATES
from repro.gpusim import ENCODER_PERF
from repro.gpusim.encoder_perf import BERT_CHUNK_BYTES, RESNET_CHUNK_BYTES
from repro.models.catalogs import bert_large_catalog, resnet50_catalog
from repro.util.seeding import spawn_rng
from repro.util.tables import format_table


def _gradient_sample(catalog, seed, max_layers=16, cap=150_000):
    rng = spawn_rng(seed)
    grads = []
    for l in catalog[:max_layers]:
        n = min(l.grad_elems, cap)
        small = rng.standard_normal(n) * 1e-4
        big = rng.standard_normal(n) * np.exp(rng.standard_normal(n)) * 5e-2
        mask = rng.random(n) < 0.12
        grads.append(np.where(mask, big, small).astype(np.float32))
    return grads


def run_experiment():
    datasets = {
        "resnet50": (_gradient_sample(resnet50_catalog(), 1), RESNET_CHUNK_BYTES),
        "bert-large": (_gradient_sample(bert_large_catalog(), 2), BERT_CHUNK_BYTES),
    }
    results = {}
    for model, (grads, chunk) in datasets.items():
        total = sum(g.nbytes for g in grads)
        rows = []
        for enc in NVCOMP_CANDIDATES:
            comp = CompsoCompressor(4e-3, 4e-3, encoder=enc, seed=0)
            wire = 0
            for i in range(0, len(grads), 4):
                wire += comp.compress_many(grads[i : i + 4]).nbytes
            perf = ENCODER_PERF[enc]
            rows.append(
                [
                    enc,
                    perf.compress_throughput(chunk),
                    total / wire,
                    perf.decompress_throughput(chunk),
                ]
            )
        results[model] = rows
    # Encoder selection (section 4.4) must pick ANS.
    pm = PerformanceModel(SLINGSHOT10, world_size=64)
    grads = datasets["resnet50"][0]
    best, _ = pm.choose_encoder(grads, CompsoCompressor(4e-3, 4e-3))
    return results, best


def test_table2_encoders(benchmark):
    results, best = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    blocks = []
    for model, rows in results.items():
        blocks.append(
            format_table(
                ["encoder", "C-GB/s (model)", "overall CR (measured)", "D-GB/s (model)"],
                rows,
                title=f"Table 2 — encoder comparison on {model} K-FAC gradients",
            )
        )
    blocks.append(f"encoder selected by the performance model: {best}")
    emit(
        "table2_encoders",
        "\n\n".join(blocks),
        data={
            "selected_encoder": best,
            "models": {
                model: [
                    {
                        "encoder": r[0],
                        "compress_gbps": r[1],
                        "overall_cr": r[2],
                        "decompress_gbps": r[3],
                    }
                    for r in rows
                ]
                for model, rows in results.items()
            },
        },
    )
    assert best == "ans"
    for model, rows in results.items():
        cr = {r[0]: r[2] for r in rows}
        # Entropy coding beats dictionary matching and RLE on gradients.
        assert cr["ans"] > cr["lz4"], model
        assert cr["ans"] > cr["snappy"], model
        assert cr["ans"] > cr["cascaded"], model
        assert cr["zstd"] >= cr["lz4"], model
        # ANS dominates the other entropy coders in modelled throughput.
        tput = {r[0]: r[1] for r in rows}
        for other in ("deflate", "gdeflate", "zstd"):
            assert tput["ans"] > tput[other], model
