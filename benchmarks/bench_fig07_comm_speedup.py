"""Figure 7 + section 5.2 CR numbers: communication speedup by compressor.

For each of the four models, both platforms, and node counts 2..16
(8-64 GPUs), computes the K-FAC allgather speedup (overhead excluded,
as the paper does) using each compressor's *measured* ratio on
KFAC-gradient-like data and the timing model's allgather cost.

Paper claims reproduced: COMPSO reaches the highest speedups (up to
14.5x/11.2x on the two platforms), speedups are larger on the slower
fabric and grow with GPU count, and COMPSO's average CR (~19-24x per
model) tops cuSZ (~5-16x) and QSGD (~5-15x).
"""

import numpy as np

from benchmarks._common import emit
from repro.compression import CocktailSgdCompressor, QsgdCompressor, SzCompressor
from repro.core import CompsoCompressor
from repro.distributed import PLATFORM1, PLATFORM2
from repro.gpusim import PIPELINES
from repro.kfac_dist import CompressionSpec, KfacIterationModel, MODEL_TIMING_PROFILES
from repro.models.catalogs import MODEL_CATALOGS
from repro.util.seeding import spawn_rng
from repro.util.tables import format_table

COMPRESSORS = {
    "cusz": (lambda: SzCompressor(4e-3), "sz-cuda", 1),
    "qsgd": (lambda: QsgdCompressor(8), "qsgd-cuda", 1),
    "cocktail": (lambda: CocktailSgdCompressor(0.2, 8), "cocktail-pytorch", 1),
    "compso": (lambda: CompsoCompressor(4e-3, 4e-3), "compso-cuda", 4),
}

NODE_COUNTS = (2, 4, 8, 16)


def _sample_gradients(catalog, rng, max_layers=24):
    """Per-layer synthetic K-FAC gradients at catalog sizes (capped for
    speed; ratios are size-stable beyond ~100k elements)."""
    grads = []
    for l in catalog[:max_layers]:
        n = min(l.grad_elems, 200_000)
        small = rng.standard_normal(n) * 1e-4
        big = rng.standard_normal(n) * np.exp(rng.standard_normal(n)) * 5e-2
        mask = rng.random(n) < 0.12
        grads.append(np.where(mask, big, small).astype(np.float32))
    return grads


def measure_ratios():
    """Real compressed sizes per compressor per model."""
    ratios: dict[str, dict[str, float]] = {}
    for model, catalog_fn in MODEL_CATALOGS.items():
        catalog = catalog_fn()
        rng = spawn_rng(0, hash(model) % 1000)
        grads = _sample_gradients(catalog, rng)
        total = sum(g.nbytes for g in grads)
        ratios[model] = {}
        for cname, (factory, _, agg) in COMPRESSORS.items():
            comp = factory()
            if hasattr(comp, "compress_many") and agg > 1:
                wire = 0
                for i in range(0, len(grads), agg):
                    wire += comp.compress_many(grads[i : i + agg]).nbytes
            else:
                wire = sum(comp.compress(g).nbytes for g in grads)
            ratios[model][cname] = total / wire
    return ratios


def run_experiment():
    ratios = measure_ratios()
    rows = []
    for model, catalog_fn in MODEL_CATALOGS.items():
        catalog = catalog_fn()
        prof = MODEL_TIMING_PROFILES[model]
        for pname, plat in (("P1", PLATFORM1), ("P2", PLATFORM2)):
            for nodes in NODE_COUNTS:
                m = KfacIterationModel(catalog, plat, nodes, profile=prof)
                row = [model, pname, nodes * plat.gpus_per_node]
                for cname, (_, pipeline, agg) in COMPRESSORS.items():
                    spec = CompressionSpec(ratios[model][cname], PIPELINES[pipeline], agg)
                    row.append(m.comm_speedup(spec))
                rows.append(row)
    return ratios, rows


def test_fig7_comm_speedup(benchmark):
    ratios, rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["model", "platform", "gpus", *COMPRESSORS],
        rows,
        title="Figure 7 — K-FAC allgather speedup (overhead excluded)",
        floatfmt=".1f",
    )
    cr_table = format_table(
        ["model", *COMPRESSORS],
        [[m, *[ratios[m][c] for c in COMPRESSORS]] for m in ratios],
        title="Section 5.2 — measured compression ratios (aggressive stage)",
        floatfmt=".1f",
    )
    cols = list(COMPRESSORS)
    emit(
        "fig07_comm_speedup",
        table + "\n\n" + cr_table,
        data={
            "speedups": [
                {
                    "model": r[0],
                    "platform": r[1],
                    "gpus": r[2],
                    **dict(zip(cols, r[3:])),
                }
                for r in rows
            ],
            "compression_ratios": ratios,
        },
    )
    compso_i = 3 + cols.index("compso")
    for row in rows:
        speeds = dict(zip(cols, row[3:]))
        # COMPSO wins over the accuracy-matched baselines everywhere.
        assert speeds["compso"] > speeds["cusz"]
        assert speeds["compso"] > speeds["qsgd"]
    # Paper scale: COMPSO peaks around 14.5x on Platform 1 (we land in
    # the same regime) and lower on the faster Platform 2 fabric.
    p1 = [r[compso_i] for r in rows if r[1] == "P1"]
    p2 = [r[compso_i] for r in rows if r[1] == "P2"]
    assert 10.0 < max(p1) < 25.0
    assert max(p2) < max(p1)
    # CR claim: COMPSO ~19-24x per model, above cuSZ and QSGD.
    for m, per in ratios.items():
        assert per["compso"] > per["qsgd"], m
        assert per["compso"] > per["cusz"], m
        assert 14.0 < per["compso"] < 32.0, (m, per["compso"])
