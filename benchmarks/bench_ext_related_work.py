"""Extension bench: section 6 related-work comparisons.

1. **Ok-topk vs COMPSO adaptivity** — Ok-topk keeps a fixed selection
   rule across training; COMPSO adapts to the LR schedule.  Measured:
   per-stage ratios of each on the same gradient stream.
2. **Error feedback trade-off** — EF repairs biased sparsifiers but costs
   a model-sized residual buffer per worker, the memory overhead the
   paper cites for avoiding EF (section 6 "Quantization methods").
"""

import numpy as np

from benchmarks._common import emit
from repro.compression import ErrorFeedback, OkTopkCompressor, TopKCompressor
from repro.core import AdaptiveCompso, StepLrSchedule
from repro.data import make_image_data
from repro.distributed import SimCluster
from repro.kfac_dist import DistributedKfacTrainer
from repro.kfac_dist.memory import estimate_kfac_memory
from repro.models import resnet_proxy
from repro.models.catalogs import MODEL_CATALOGS
from repro.train import ClassificationTask
from repro.util.seeding import spawn_rng
from repro.util.tables import format_table

PIVOT = 8
ITERS = 16


def _payload(seed=7, n=400_000):
    rng = spawn_rng(seed)
    small = rng.standard_normal(n) * 1e-4
    big = rng.standard_normal(n) * np.exp(rng.standard_normal(n)) * 5e-2
    return np.where(rng.random(n) < 0.12, big, small).astype(np.float32)


def adaptivity_part():
    x = _payload()
    ok = OkTopkCompressor(0.05, seed=0)
    ac = AdaptiveCompso(StepLrSchedule(PIVOT))
    rows = []
    for t in range(ITERS):
        rows.append(
            [t, x.nbytes / ok.compress(x).nbytes, x.nbytes / ac.compress(x).nbytes]
        )
        ac.step()
    return rows


def ef_part():
    """Train the proxy with a biased sparsifier, with and without EF."""

    def train(compressor):
        data = make_image_data(500, n_classes=5, size=8, noise=0.45, seed=0)
        task = ClassificationTask(data)
        model = resnet_proxy(n_classes=5, channels=8, rng=3)
        tr = DistributedKfacTrainer(
            model, task, SimCluster(1, 4, seed=0), lr=0.05, inv_update_freq=5,
            compressor=compressor,
        )
        h = tr.train(iterations=20, batch_size=64, eval_every=20)
        return h.losses[-1], h.final_metric()

    base_loss, base_acc = train(None)
    topk_loss, topk_acc = train(TopKCompressor(0.05))
    ef = ErrorFeedback(TopKCompressor(0.05))
    ef_loss, ef_acc = train(ef)
    # EF memory cost at real-model scale: one residual buffer = one
    # gradient-sized tensor per worker.
    mem_rows = []
    for name, fn in MODEL_CATALOGS.items():
        cat = fn()
        grad_gb = sum(l.grad_bytes for l in cat) / 1e9
        total_gb = estimate_kfac_memory(cat, per_gpu_batch=8).total / 1e9
        mem_rows.append([name, grad_gb, 100 * grad_gb / total_gb])
    return (base_loss, base_acc, topk_loss, topk_acc, ef_loss, ef_acc, ef), mem_rows


def run_experiment():
    return adaptivity_part(), ef_part()


def test_ext_related_work(benchmark):
    adapt_rows, ((base_loss, base_acc, topk_loss, topk_acc, ef_loss, ef_acc, ef), mem_rows) = (
        benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    )
    out = format_table(
        ["iteration", "Ok-topk CR", "COMPSO adaptive CR"],
        adapt_rows,
        title=f"Related work — fixed (Ok-topk) vs LR-adaptive bounds (pivot @{PIVOT})",
        floatfmt=".1f",
    )
    out += "\n\n" + format_table(
        ["config", "final loss", "final acc%"],
        [
            ["kfac (no comp.)", base_loss, base_acc],
            ["kfac+topk-5%", topk_loss, topk_acc],
            ["kfac+EF(topk-5%)", ef_loss, ef_acc],
        ],
        title="Related work — error feedback repairs biased sparsification",
        floatfmt=".3f",
    )
    out += "\n\n" + format_table(
        ["model", "EF residual GB/worker", "% of training footprint"],
        mem_rows,
        title="Related work — EF memory overhead (why the paper avoids it)",
    )
    emit(
        "ext_related_work",
        out,
        data={
            "adaptivity": [
                {"iteration": r[0], "oktopk_cr": r[1], "compso_cr": r[2]}
                for r in adapt_rows
            ],
            "error_feedback": {
                "base": {"loss": base_loss, "acc": base_acc},
                "topk": {"loss": topk_loss, "acc": topk_acc},
                "ef_topk": {"loss": ef_loss, "acc": ef_acc},
            },
            "ef_memory": [
                {"model": r[0], "residual_gb": r[1], "footprint_pct": r[2]}
                for r in mem_rows
            ],
        },
    )
    ok_crs = [r[1] for r in adapt_rows]
    ac_crs = [r[2] for r in adapt_rows]
    # Ok-topk's ratio is flat; COMPSO's drops at the pivot by design.
    assert np.std(ok_crs) < 0.05 * np.mean(ok_crs)
    assert np.mean(ac_crs[:PIVOT]) > 1.5 * np.mean(ac_crs[PIVOT:])
    # EF recovers most of the aggressive sparsifier's loss gap.
    assert ef_loss <= topk_loss + 1e-9
    # Residual buffers are a nontrivial share of the footprint.
    assert all(row[2] > 1.0 for row in mem_rows)
