"""Extension bench: xray critical-path attribution on seeded workloads.

Runs the same seeded distributed K-FAC + COMPSO workload three ways —
blocking, comm/compute overlapped, and blocking over a degraded link
(latency 4x, bandwidth /8 for the whole run) — with the ``repro.xray``
analyzer attached, and checks the subsystem's three load-bearing
claims:

* **identity** — on every run, every step's critical-path seconds equal
  the step's simulated elapsed time to < 1e-9 (the telescoping-walk
  construction, not a tolerance band);
* **overlap accounting** — on the overlapped run the per-step hidden
  comm totals reconcile with the runtime's own hidden/exposed split;
* **attribution** — ``attribute_regression`` between the clean and the
  degraded ledgers names a *comm* category as the regressing segment,
  i.e. the tool points at the subsystem that was actually sabotaged.

``benchmarks/out/BENCH_ext_xray.json`` carries the per-run identity
errors, the on-path category split, and the attribution verdict.
"""

import shutil
import tempfile
from pathlib import Path

from benchmarks._common import emit
from repro import telemetry
from repro.core import CompsoCompressor
from repro.data import make_image_data
from repro.distributed import SimCluster
from repro.faults import FaultPlan, LinkDegradation
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import resnet_proxy
from repro.obsv import LedgerConfig, load_ledger
from repro.runtime import ComputeModel, StreamRuntime
from repro.train import ClassificationTask
from repro.util.tables import format_table
from repro.xray import attribute_regression, xray_records

ITERATIONS = 8


def _run(ledger_path, *, overlap=False, slow_net=False):
    """One seeded K-FAC run with the xray analyzer attached."""
    plan = None
    if slow_net:
        plan = FaultPlan(
            degradations=[
                LinkDegradation(
                    start=0, stop=ITERATIONS, latency_factor=4.0, bandwidth_factor=8.0
                )
            ]
        )
    cluster = SimCluster(2, 2, seed=0, fault_plan=plan)
    runtime = None
    if overlap:
        runtime = StreamRuntime(
            cluster, overlap=True, n_comm_streams=2, compute=ComputeModel(train_flops=5e7)
        )
    task = ClassificationTask(
        make_image_data(160, n_classes=4, size=8, noise=0.5, seed=0)
    )
    trainer = DistributedKfacTrainer(
        resnet_proxy(n_classes=4, channels=4, rng=3),
        task,
        cluster,
        lr=0.05,
        inv_update_freq=2,
        compressor=CompsoCompressor(4e-3, 4e-3, seed=0),
        runtime=runtime,
        reliable_channel=False,
        obsv=LedgerConfig(ledger_path),
        xray=True,
    )
    with telemetry.session():
        trainer.train(iterations=ITERATIONS, batch_size=32, seed=0)
    return trainer


def run_experiment():
    workdir = Path(tempfile.mkdtemp(prefix="bench_xray_"))
    runs = {}
    trainers = {}
    for name, kwargs in (
        ("blocking", {}),
        ("overlapped", {"overlap": True}),
        ("slow-net", {"slow_net": True}),
    ):
        path = workdir / f"{name}.ledger"
        trainers[name] = _run(path, **kwargs)
        records = xray_records(load_ledger(path))
        runs[name] = {
            "path": path,
            "records": records,
            "identity_err": max(
                abs(r["critpath_s"] - r["elapsed_s"]) for r in records
            ),
            "critpath_s": sum(r["critpath_s"] for r in records),
            "exposed_comm_s": sum(r["exposed_comm_s"] for r in records),
            "hidden_comm_s": sum(r["hidden_comm_s"] for r in records),
        }
    runs["overlapped"]["runtime_hidden_s"] = trainers[
        "overlapped"
    ].runtime.hidden_comm_seconds()
    verdict = attribute_regression(
        load_ledger(runs["blocking"]["path"]), load_ledger(runs["slow-net"]["path"])
    )
    shutil.rmtree(workdir, ignore_errors=True)
    for r in runs.values():
        r.pop("path")
    return runs, verdict


def test_ext_xray(benchmark):
    runs, verdict = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{r['critpath_s'] * 1e3:.4f}",
            f"{r['exposed_comm_s'] * 1e3:.4f}",
            f"{r['hidden_comm_s'] * 1e3:.4f}",
            f"{r['identity_err']:.2e}",
        ]
        for name, r in runs.items()
    ]
    table = format_table(
        ["run", "critpath ms", "exposed comm ms", "hidden comm ms", "identity err s"],
        rows,
        title=f"xray critical-path attribution — {ITERATIONS} seeded K-FAC steps",
    )
    verdict_line = (
        f"attribution clean -> slow-net: segment `{verdict['segment']}` "
        f"({verdict['kind']}) +{verdict['delta_s'] * 1e3:.4f} ms "
        f"of +{verdict['total_delta_s'] * 1e3:.4f} ms total"
    )
    emit(
        "ext_xray",
        f"{table}\n\n{verdict_line}",
        data={
            "runs": {
                name: {k: v for k, v in r.items() if k != "records"}
                for name, r in runs.items()
            },
            "attribution": verdict,
        },
    )

    # The telescoping identity holds on every run, step by step.
    for name, r in runs.items():
        assert r["identity_err"] < 1e-9, name
    # Overlap genuinely hides comm, and the xray accounting reconciles
    # with the runtime's own hidden/exposed split.
    assert runs["blocking"]["hidden_comm_s"] == 0.0
    assert runs["overlapped"]["hidden_comm_s"] > 0.0
    assert abs(
        runs["overlapped"]["hidden_comm_s"] - runs["overlapped"]["runtime_hidden_s"]
    ) < 1e-9
    # The degraded link slows the run, and attribution names comm.
    assert runs["slow-net"]["critpath_s"] > runs["blocking"]["critpath_s"]
    assert verdict["kind"] == "comm"
    assert verdict["delta_s"] > 0.0
