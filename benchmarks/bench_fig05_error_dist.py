"""Figure 5 + section 4.2: quantisation error distributions.

RN produces a uniform error distribution; SR a triangular one; P0.5 is
non-deterministic yet uniform.  The paper's insight: the triangular
(SR) shape preserves K-FAC accuracy, and non-determinism alone (P0.5)
does not — verified here on real K-FAC proxy gradients *and* synthetic
uniform/normal data, plus the P0.5-vs-SR accuracy experiment.
"""

import numpy as np
from scipy import stats as sps

from benchmarks._common import emit
from repro.compression.quantize import round_nearest, round_p05, round_stochastic
from repro.core.compso import CompsoCompressor
from repro.data import make_image_data
from repro.distributed import SimCluster
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import resnet_proxy
from repro.train import ClassificationTask
from repro.util.tables import format_table


def _kfac_gradients():
    """Real K-FAC preconditioned gradients from a short proxy run."""
    data = make_image_data(300, n_classes=5, size=8, noise=0.45, seed=0)
    task = ClassificationTask(data)
    model = resnet_proxy(n_classes=5, channels=8, rng=3)
    tr = DistributedKfacTrainer(model, task, SimCluster(1, 2, seed=0), lr=0.05)
    tr.train(iterations=5, batch_size=32)
    return np.concatenate(
        [tr.kfac.precondition(i).ravel() for i in range(len(tr.kfac.layers))]
    )


def _error_shape_stats(values):
    rng = np.random.default_rng(7)
    out = []
    for mode_name, fn in [("RN", round_nearest), ("SR", round_stochastic), ("P0.5", round_p05)]:
        v = values / (np.abs(values).max() * 4e-3)  # eb 4e-3 quantisation grid
        err = (fn(v, rng) - v).astype(np.float64)
        err = err[np.abs(err) > 1e-12]
        half = 0.5 if mode_name == "RN" else 1.0
        ks_uni = sps.kstest(err, sps.uniform(loc=-half, scale=2 * half).cdf).statistic
        ks_tri = sps.kstest(err, sps.triang(c=0.5, loc=-half, scale=2 * half).cdf).statistic
        out.append([mode_name, float(err.mean()), ks_uni, ks_tri,
                    "triangular" if ks_tri < ks_uni else "uniform"])
    return out


def _p05_accuracy_drop():
    """Section 4.2's control: at the same (aggressive) bound, SR preserves
    accuracy while P0.5 degrades it and RN degrades it most — averaged
    over seeds because proxy-scale accuracy deltas are noisy."""

    def train(rounding, seed):
        data = make_image_data(600, n_classes=8, size=8, noise=1.0, seed=0)
        task = ClassificationTask(data)
        model = resnet_proxy(n_classes=8, channels=8, rng=3)
        comp = None
        if rounding is not None:
            comp = CompsoCompressor(0.0, 0.5, rounding=rounding, seed=seed)
        tr = DistributedKfacTrainer(
            model, task, SimCluster(1, 4, seed=seed), lr=0.05, inv_update_freq=5,
            compressor=comp,
        )
        h = tr.train(iterations=16, batch_size=64, eval_every=16, seed=seed)
        return h.final_metric()

    seeds = range(3)
    return {
        mode or "none": float(np.mean([train(mode, s) for s in seeds]))
        for mode in (None, "sr", "p05", "rn")
    }


def run_experiment():
    grads = _kfac_gradients()
    rng = np.random.default_rng(3)
    synthetic_uniform = rng.uniform(-1, 1, 100_000)
    synthetic_normal = rng.standard_normal(100_000)
    shapes = {
        "kfac-gradients": _error_shape_stats(grads),
        "synthetic-uniform": _error_shape_stats(synthetic_uniform),
        "synthetic-normal": _error_shape_stats(synthetic_normal),
    }
    return shapes, _p05_accuracy_drop()


def test_fig5_error_distributions(benchmark):
    shapes, acc = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    blocks = []
    for data_name, rows in shapes.items():
        blocks.append(
            format_table(
                ["rounding", "mean err", "KS vs uniform", "KS vs triangular", "shape"],
                rows,
                title=f"Figure 5 — error distribution on {data_name} (eb 4E-3)",
                floatfmt=".4f",
            )
        )
    blocks.append(
        format_table(
            ["rounding", "mean accuracy % (3 seeds)"],
            [[k, v] for k, v in acc.items()],
            title="Section 4.2 — rounding-mode accuracy control (aggressive bound)",
        )
    )
    emit(
        "fig05_error_dist",
        "\n\n".join(blocks),
        data={
            "shapes": {
                data_name: [
                    {
                        "rounding": r[0],
                        "mean_err": r[1],
                        "ks_uniform": r[2],
                        "ks_triangular": r[3],
                        "shape": r[4],
                    }
                    for r in rows
                ]
                for data_name, rows in shapes.items()
            },
            "accuracy_by_rounding": acc,
        },
    )
    for data_name, rows in shapes.items():
        by = {r[0]: r for r in rows}
        assert by["RN"][4] == "uniform", data_name
        assert by["SR"][4] == "triangular", data_name
        assert by["P0.5"][4] == "uniform", data_name
        assert abs(by["SR"][1]) < 0.02  # SR unbiased
    # Section 4.2 ordering: SR tracks the baseline; P0.5 drops; RN drops most.
    assert acc["sr"] >= acc["none"] - 1.0
    assert acc["sr"] > acc["p05"]
    assert acc["p05"] > acc["rn"]
