"""Extension bench: chaos testing of the fault-tolerance subsystem.

Runs every scripted fault scenario (stragglers, degraded links, payload
corruption, rank loss, and the mixed storm) against its fault-free twin
and reports, per scenario:

* final full-dataset loss delta (the convergence cost of the faults
  *after* tolerance machinery — checksummed retransmits, compressor
  degradation, elastic world shrink — has done its job);
* simulated-time overhead and the time-to-recover (extra sim seconds
  spent inside iterations where faults fired);
* the recovery counters, so the table doubles as a telemetry audit.

The acceptance bar mirrors the robustness issue: every scenario must
complete all iterations, and the mixed storm's final loss must land
within 5% of the fault-free run at equal iterations.
"""

from benchmarks._common import emit
from repro.faults.chaos import SCENARIOS, run_chaos
from repro.util.tables import format_table


def run_experiment():
    return {name: run_chaos(name, iterations=12, seed=0) for name in SCENARIOS}


def test_ext_chaos(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for name, r in results.items():
        recov = sum(v for k, v in r.counters.items() if k.startswith("faults.recovered"))
        rows.append(
            [
                name,
                f"{r.world_size}->{r.final_world_size}",
                r.faulted_loss,
                r.baseline_loss,
                r.loss_delta_pct,
                r.sim_time_overhead_pct,
                r.time_to_recover_s * 1e3,
                int(recov),
            ]
        )
    out = format_table(
        [
            "scenario",
            "world",
            "loss",
            "fault-free",
            "delta %",
            "sim overhead %",
            "recover ms",
            "recoveries",
        ],
        rows,
        title="Chaos scenarios — convergence and recovery vs fault-free baseline",
        floatfmt=".3f",
    )
    emit(
        "ext_chaos",
        out,
        data={
            r[0]: {
                "world": r[1],
                "loss": r[2],
                "baseline_loss": r[3],
                "loss_delta_pct": r[4],
                "sim_overhead_pct": r[5],
                "recover_ms": r[6],
                "recoveries": r[7],
            }
            for r in rows
        },
    )

    for name, r in results.items():
        # Every scenario must run to completion under fault injection.
        assert r.completed, f"{name}: faulted run did not complete"
        injected = sum(v for k, v in r.counters.items() if k.startswith("faults.injected"))
        assert injected > 0, f"{name}: no faults were injected"
    mixed = results["mixed"]
    assert abs(mixed.loss_delta_pct) < 5.0, f"mixed storm delta {mixed.loss_delta_pct:.2f}%"
    assert mixed.final_world_size == mixed.world_size - 1
    # Corruption must be caught by the checksum layer, and every caught
    # corruption answered by a retransmit or a lossless fallback.
    corr = results["corruption"]
    assert corr.counters.get("faults.detected[kind=corruption]", 0) > 0
    assert (
        corr.counters.get("faults.retransmits", 0) > 0
        or corr.counters.get("faults.recovered[kind=lossless_fallback]", 0) > 0
    )
    # Time-plane faults cost simulated time but never convergence.
    assert results["stragglers"].sim_time_overhead_pct > 5.0
    assert results["degraded-link"].sim_time_overhead_pct > 5.0
