"""Ablation: layer-aggregation factor sweep (section 4.4).

Sweeps m over {1, 2, 4, 8, 16, 32} for every model at 16 nodes on both
platforms and compares the best fixed m against the performance model's
choice.  The paper's claim: a fixed factor can be too small (kernel and
message overheads dominate) or too large for optimal end-to-end speedup;
the model-chosen factor matches the sweep's optimum.
"""

import numpy as np

from benchmarks._common import emit
from repro.core import CompsoCompressor, PerformanceModel
from repro.distributed import PLATFORM1
from repro.kfac_dist import CompressionSpec, KfacIterationModel, MODEL_TIMING_PROFILES
from repro.models.catalogs import MODEL_CATALOGS
from repro.util.seeding import spawn_rng
from repro.util.tables import format_table

M_CANDIDATES = (1, 2, 4, 8, 16, 32)


def run_experiment():
    rows = []
    chosen = {}
    for model, catalog_fn in MODEL_CATALOGS.items():
        catalog = catalog_fn()
        m_iter = KfacIterationModel(
            catalog, PLATFORM1, 16, profile=MODEL_TIMING_PROFILES[model]
        )
        speedups = [
            m_iter.end_to_end_speedup(CompressionSpec.compso(22.0, aggregation=m))
            for m in M_CANDIDATES
        ]
        rows.append([model, *speedups])
        # Performance-model decision on catalog-sized gradients.
        rng = spawn_rng(0, hash(model) % 991)
        grads = []
        for l in catalog[:16]:
            n = min(l.grad_elems, 100_000)
            small = rng.standard_normal(n) * 1e-4
            big = rng.standard_normal(n) * np.exp(rng.standard_normal(n)) * 5e-2
            grads.append(np.where(rng.random(n) < 0.12, big, small).astype(np.float32))
        pm = PerformanceModel(PLATFORM1.network, world_size=64)
        m_choice, _ = pm.choose_aggregation(
            grads, CompsoCompressor(4e-3, 4e-3), r=0.45, candidates=M_CANDIDATES
        )
        chosen[model] = m_choice
    return rows, chosen


def test_ablation_aggregation_sweep(benchmark):
    rows, chosen = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["model", *[f"m={m}" for m in M_CANDIDATES]],
        rows,
        title="Ablation — end-to-end speedup vs aggregation factor (P1, 16 nodes)",
    )
    table += "\n\nperformance-model choices: " + str(chosen)
    emit(
        "ablation_aggregation",
        table,
        data={
            "sweep": [
                {"model": r[0], **{f"m{m}": s for m, s in zip(M_CANDIDATES, r[1:])}}
                for r in rows
            ],
            "model_choice": chosen,
        },
    )
    for row in rows:
        speedups = dict(zip(M_CANDIDATES, row[1:]))
        # m=1 (no aggregation) is never optimal: overheads dominate.
        assert max(speedups.values()) > speedups[1]
        # The model's pick lands within 2% of the sweep optimum.
        model_pick = chosen[row[0]]
        nearest = min(M_CANDIDATES, key=lambda m: abs(m - model_pick))
        assert speedups[nearest] >= max(speedups.values()) * 0.98
