"""Extension bench: the paper's section 7 future-work directions.

1. **Auto-tuned error bounds** — replace the empirical 4E-3 setting with
   bounds searched under a gradient-fidelity budget; report the ratio
   gain at matched fidelity.
2. **Factor (A/G) compression** — compress the factor-allreduce payload
   too; report the measured factor CR from a real training run, the
   additional modelled end-to-end speedup, and the accuracy check.
"""

import numpy as np

from benchmarks._common import emit
from repro.core import (
    CompsoCompressor,
    FactorCompressor,
    FidelityBudget,
    autotune_bounds,
)
from repro.data import make_image_data
from repro.distributed import PLATFORM1, SimCluster
from repro.kfac_dist import (
    CompressionSpec,
    DistributedKfacTrainer,
    KfacIterationModel,
    MODEL_TIMING_PROFILES,
)
from repro.models import resnet_proxy
from repro.models.catalogs import MODEL_CATALOGS
from repro.train import ClassificationTask
from repro.util.seeding import spawn_rng
from repro.util.tables import format_table


def _grad_sample(seed=3, n=300_000):
    rng = spawn_rng(seed)
    small = rng.standard_normal(n) * 1e-4
    big = rng.standard_normal(n) * np.exp(rng.standard_normal(n)) * 5e-2
    return np.where(rng.random(n) < 0.12, big, small).astype(np.float32)


def autotune_part():
    grads = [_grad_sample(s) for s in (1, 2)]
    default = CompsoCompressor(4e-3, 4e-3)
    default_cr = sum(g.nbytes for g in grads) / sum(default.compress(g).nbytes for g in grads)
    rows = []
    for budget_name, budget in [
        ("strict (cos 0.9999, l2 1%)", FidelityBudget(0.9999, 0.01)),
        ("paper-like (cos 0.999, l2 5%)", FidelityBudget(0.999, 0.05)),
        ("relaxed (cos 0.995, l2 10%)", FidelityBudget(0.995, 0.10)),
    ]:
        res = autotune_bounds(grads, budget=budget)
        rows.append([budget_name, res.eb_f, res.eb_q, res.ratio, res.ratio / default_cr])
    return rows, default_cr


def factor_part():
    # Real training with factor compression: accuracy + measured factor CR.
    def train(factor_comp):
        data = make_image_data(400, n_classes=5, size=8, noise=0.45, seed=0)
        task = ClassificationTask(data)
        model = resnet_proxy(n_classes=5, channels=8, rng=3)
        tr = DistributedKfacTrainer(
            model, task, SimCluster(1, 4, seed=0), lr=0.05, inv_update_freq=5,
            compressor=CompsoCompressor(4e-3, 4e-3), factor_compressor=factor_comp,
        )
        h = tr.train(iterations=18, batch_size=64, eval_every=18)
        return h.final_metric(), tr

    acc_base, _ = train(None)
    acc_fc, tr_fc = train(FactorCompressor(1e-3))
    factor_cr = float(np.mean(tr_fc.factor_ratios))
    # Modelled end-to-end effect per model.
    rows = []
    for name, catalog_fn in MODEL_CATALOGS.items():
        m = KfacIterationModel(
            catalog_fn(), PLATFORM1, 16, profile=MODEL_TIMING_PROFILES[name]
        )
        spec = CompressionSpec.compso(22.0)
        rows.append(
            [
                name,
                m.end_to_end_speedup(spec),
                m.end_to_end_speedup(spec, factor_ratio=factor_cr),
            ]
        )
    return acc_base, acc_fc, factor_cr, rows


def run_experiment():
    return autotune_part(), factor_part()


def test_ext_future_work(benchmark):
    (tune_rows, default_cr), (acc_base, acc_fc, factor_cr, e2e_rows) = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    out = format_table(
        ["fidelity budget", "eb_f", "eb_q", "CR", "vs default 4E-3"],
        tune_rows,
        title=f"Future work 1 — auto-tuned bounds (default 4E-3/4E-3 CR = {default_cr:.1f})",
        floatfmt=".4f",
    )
    out += "\n\n" + format_table(
        ["model", "e2e speedup (grad only)", "e2e (+factor compression)"],
        e2e_rows,
        title=(
            f"Future work 2 — factor compression: measured factor CR {factor_cr:.1f}x, "
            f"proxy accuracy {acc_base:.1f}% -> {acc_fc:.1f}%"
        ),
    )
    emit(
        "ext_future_work",
        out,
        data={
            "autotune": {
                "default_cr": default_cr,
                "rows": [
                    {
                        "budget": r[0],
                        "eb_f": r[1],
                        "eb_q": r[2],
                        "cr": r[3],
                        "vs_default": r[4],
                    }
                    for r in tune_rows
                ],
            },
            "factor_compression": {
                "acc_base": acc_base,
                "acc_with_factor": acc_fc,
                "factor_cr": factor_cr,
                "end_to_end": [
                    {"model": r[0], "grad_only": r[1], "with_factor": r[2]}
                    for r in e2e_rows
                ],
            },
        },
    )
    # Relaxed budgets must out-compress the default empirical setting.
    assert tune_rows[-1][3] > default_cr
    # Factor compression must not hurt accuracy and must add e2e speedup.
    assert acc_fc >= acc_base - 5.0
    assert factor_cr > 1.5
    for _, base, with_fc in e2e_rows:
        assert with_fc > base
