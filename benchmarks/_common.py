"""Shared benchmark-harness utilities.

Every benchmark regenerates one of the paper's tables or figures: it
computes the same rows/series the paper reports, prints them (visible
with ``pytest -s``) and writes them to ``benchmarks/out/<name>.txt`` so
results survive the run.  Absolute numbers come from the simulator and
need not match the paper's testbed; the *shape* — orderings, rough
factors, crossovers — is asserted where the paper states one.
"""

from __future__ import annotations

import json
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def emit(name: str, text: str, *, data: dict | None = None) -> None:
    """Print a result block and persist it under benchmarks/out/.

    ``data`` is the machine-readable twin of the text block: when given
    it is written through :func:`emit_json`, so every benchmark has a
    ``BENCH_<name>.json`` artifact CI gates and plots can consume
    without scraping the table.
    """
    OUT_DIR.mkdir(exist_ok=True)
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n"
    print(banner + text)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        emit_json(name, data)


def emit_json(name: str, payload: dict) -> Path:
    """Persist a machine-readable result next to the ``.txt`` block.

    Written as ``benchmarks/out/BENCH_<name>.json`` so downstream tooling
    (CI assertions, plotting) can consume benchmark numbers without
    scraping the human-readable table.
    """
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
